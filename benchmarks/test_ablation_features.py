"""Ablation: distance features vs raw-RSSI features for Scene Analysis.

The paper feeds the classifier *detected distances*; the natural
alternative is the filtered RSSI itself.  Distance inversion is a
monotone per-beacon transform, so both should classify comparably -
this bench verifies the choice is not load-bearing.
"""

from conftest import print_table, run_once

from repro.building.presets import test_house as make_test_house
from repro.core.calibration import dataset_from_trace
from repro.ml.datasets import FingerprintVectorizer, MISSING_DISTANCE_M, MISSING_RSSI_DBM
from repro.ml.kernels import RbfKernel
from repro.ml.scaling import StandardScaler
from repro.ml.svm import SupportVectorClassifier
from repro.radio.channel import ChannelModel
from repro.sim.rng import derive_seed
from repro.traces.synth import synthesize_survey_trace


def _accuracy(feature):
    plan = make_test_house()
    channel = ChannelModel(seed=99)
    missing = MISSING_DISTANCE_M if feature == "distance" else MISSING_RSSI_DBM
    vectorizer = FingerprintVectorizer(plan.beacon_ids, missing_value=missing)

    def survey(seed, points):
        trace = synthesize_survey_trace(
            plan, points_per_room=points, dwell_s=24.0,
            seed=seed, channel=channel,
        )
        return dataset_from_trace(trace, feature=feature)

    train = survey(derive_seed(3, "train"), 6)
    test = survey(derive_seed(3, "test"), 4)
    X_train, y_train, _ = train.to_matrix(vectorizer)
    X_test, y_test, _ = test.to_matrix(vectorizer)
    scaler = StandardScaler()
    model = SupportVectorClassifier(c=10.0, kernel=RbfKernel(gamma=0.5))
    model.fit(scaler.fit_transform(X_train), y_train)
    return model.score(scaler.transform(X_test), y_test)


def test_ablation_feature_choice(benchmark):
    acc_distance = run_once(benchmark, _accuracy, "distance")
    acc_rssi = _accuracy("rssi")
    print_table(
        "Ablation: SVM features - detected distance (paper) vs raw RSSI",
        [
            ("distance features", "paper's choice", f"{acc_distance:.1%}"),
            ("RSSI features", "alternative", f"{acc_rssi:.1%}"),
        ],
    )
    # Both feature sets should work well; neither should collapse.
    assert acc_distance > 0.85
    assert acc_rssi > 0.85
    assert abs(acc_distance - acc_rssi) < 0.10
