"""Ablation: the paper's history filter vs standard alternatives.

DESIGN.md calls out the filter choice as a design decision; this bench
compares raw passthrough, moving average, the paper's EWMA(0.65) and a
1-D Kalman filter on the same static trace.
"""

import numpy as np
from conftest import print_table, run_once

from repro.building.geometry import Point
from repro.building.presets import single_room
from repro.filters.base import RawFilter
from repro.filters.ewma import EwmaFilter
from repro.filters.kalman import Kalman1DFilter
from repro.filters.moving_average import MovingAverageFilter
from repro.filters.tracker import BeaconTracker
from repro.traces.synth import run_trace
from repro.building.mobility import StaticPosition

FILTERS = {
    "raw": lambda: RawFilter(),
    "moving_avg(5)": lambda: MovingAverageFilter(5),
    "ewma(0.65) [paper]": lambda: EwmaFilter(0.65),
    "kalman": lambda: Kalman1DFilter(process_variance=0.3, measurement_variance=9.0),
}


def _evaluate():
    plan = single_room()
    beacon = plan.beacons[0]
    position = Point(beacon.position.x + 2.0, beacon.position.y)
    results = {}
    for name, factory in FILTERS.items():
        stds, errors = [], []
        for seed in (1, 2, 3):
            trace = run_trace(
                plan,
                StaticPosition(position),
                scenario="ablation-filter",
                duration_s=120.0,
                scan_period_s=2.0,
                seed=seed,
                tracker=BeaconTracker(prototype=factory()),
            )
            distances = [d for _, d in trace.distance_series(beacon.beacon_id)]
            stds.append(np.std(distances))
            errors.append(np.mean(np.abs(np.asarray(distances) - 2.0)))
        results[name] = (float(np.mean(stds)), float(np.mean(errors)))
    return results


def test_ablation_filter_choice(benchmark):
    results = run_once(benchmark, _evaluate)
    rows = [
        (name, "n/a (ablation)", f"std {std:.2f} m, |err| {err:.2f} m")
        for name, (std, err) in results.items()
    ]
    print_table("Ablation: smoothing filter on the static 2 m link", rows)

    # Every smoothing filter must beat raw on stability; the paper's
    # EWMA must be competitive with the alternatives.
    raw_std = results["raw"][0]
    ewma_std = results["ewma(0.65) [paper]"][0]
    assert ewma_std < raw_std
    assert results["moving_avg(5)"][0] < raw_std
    assert results["kalman"][0] < raw_std
