"""WAL write-through overhead and replay throughput.

Durability must be close to free on the hot path: the WAL appends one
compact JSON line per applied *batch* (not per sighting), so the
sharded ingest pipeline with per-shard logs attached sustains nearly
the same sightings/sec as with logging off.  Recovery must then be
much faster than the original run: the replayer folds the log back
through the vectorised batch-ingest path, so rebuilding state covering
a long simulated span takes a small fraction of that span.

Three things are asserted, in this order:

1. **Correctness, unconditionally**: the replayed occupancy snapshot
   is byte-identical to the live run's.
2. **Overhead**: WAL-on ingest sustains >= 80% of the WAL-off
   sightings/sec (the contract is <10% overhead; the bar leaves room
   for timer noise on loaded CI boxes).
3. **Replay speed**: replay runs >= 20x faster than the simulated
   real time the log covers.
"""

import json
import time

import numpy as np

from conftest import print_table
from repro.server.replay import replay_sharded
from repro.server.rest import Request
from repro.server.sharded import ShardedBmsService

N_SIGHTINGS = 24_000
POST_BATCH = 2_000
COALESCE = 1_000
SHARDS = 4
SIM_SPAN_S = 600.0

BEACON_IDS = [f"1-{i}" for i in range(1, 7)]
ROOMS = ["kitchen", "living", "bedroom"]


def _calibration_rows(seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(30):
        for r, room in enumerate(ROOMS):
            beacons = {
                b: float(abs(rng.normal(1.0 if i // 2 == r else 8.0, 0.5)))
                for i, b in enumerate(BEACON_IDS)
            }
            rows.append((room, beacons))
    return rows


def _sightings(n, seed=1):
    """One sighting per device, times spread over the simulated span."""
    rng = np.random.default_rng(seed)
    distances = rng.uniform(0.5, 9.0, size=(n, len(BEACON_IDS)))
    times = np.sort(rng.uniform(0.0, SIM_SPAN_S, size=n))
    return [
        {
            "device_id": f"dev-{k:06d}",
            "beacons": {b: float(row[i]) for i, b in enumerate(BEACON_IDS)},
            "time": float(t),
        }
        for k, (row, t) in enumerate(zip(distances, times))
    ]


def _make_service(rows, wal_dir=None):
    service = ShardedBmsService(
        BEACON_IDS,
        shards=SHARDS,
        queue_maxsize=2 * N_SIGHTINGS,
        coalesce_max=COALESCE,
        drain_policy="manual",
        wal_dir=wal_dir,
    )
    for room, beacons in rows:
        service.add_fingerprint(room, beacons, 0.0)
    service.train()
    return service


def _ingest_rate(service, sightings):
    """Sightings/sec through batch posts + one manual drain."""
    t0 = time.perf_counter()
    for start in range(0, len(sightings), POST_BATCH):
        response = service.router.dispatch(
            Request(
                "POST",
                "/sightings/batch",
                body={"sightings": sightings[start : start + POST_BATCH]},
                time=sightings[start]["time"],
            )
        )
        assert response.status == 202, response
    service.drain()
    elapsed = time.perf_counter() - t0
    return len(sightings) / elapsed


def _snapshot_json(service):
    snap = service.snapshot()
    return json.dumps(
        {"time": snap.time, "rooms": snap.rooms, "devices": snap.devices},
        sort_keys=True,
    )


def test_perf_wal_overhead_and_replay(benchmark, tmp_path):
    rows = _calibration_rows()
    sightings = _sightings(N_SIGHTINGS)

    # Best-of-three on a fresh service per round, rounds interleaved:
    # the ratio of two single-shot timings is far noisier than the
    # WAL's actual cost, and the slow rounds are dominated by
    # transient interference, not by logging.
    _ingest_rate(_make_service(rows), sightings)  # warm code paths
    bare_rate = logged_rate = 0.0
    for attempt in range(3):
        bare = _make_service(rows)
        bare_rate = max(bare_rate, _ingest_rate(bare, sightings))
        if attempt < 2:
            warm = _make_service(rows, wal_dir=tmp_path / f"warm-{attempt}")
            logged_rate = max(logged_rate, _ingest_rate(warm, sightings))
            warm.close_wals()
    bare.record_history(SIM_SPAN_S)

    logged = _make_service(rows, wal_dir=tmp_path / "wal")
    logged_rate = max(
        logged_rate,
        benchmark.pedantic(
            _ingest_rate, args=(logged, sightings), rounds=1, iterations=1
        ),
    )
    logged.record_history(SIM_SPAN_S)
    logged.close_wals()

    # Correctness first, unconditionally: byte-identical snapshots
    # live-with-WAL vs live-without, and replayed vs live.
    live_snapshot = _snapshot_json(logged)
    assert live_snapshot == _snapshot_json(bare)

    restored = _make_service(rows)
    t0 = time.perf_counter()
    report = replay_sharded(restored, tmp_path / "wal")
    replay_wall = time.perf_counter() - t0
    assert _snapshot_json(restored) == live_snapshot
    assert report.sightings == N_SIGHTINGS

    overhead_ratio = logged_rate / bare_rate
    realtime_factor = report.span_s / replay_wall
    print_table(
        f"WAL overhead and replay throughput ({N_SIGHTINGS} sightings, "
        f"{SHARDS} shards, {SIM_SPAN_S:.0f}s sim span)",
        [
            ("ingest, WAL off (sightings/s)", "n/a", f"{bare_rate:,.0f}"),
            ("ingest, WAL on (sightings/s)", "n/a", f"{logged_rate:,.0f}"),
            ("wal_on/wal_off ratio", ">= 0.80", f"{overhead_ratio:.2f}"),
            ("replay wall (s)", "n/a", f"{replay_wall:.2f}"),
            ("replay realtime factor", ">= 20x", f"{realtime_factor:.0f}x"),
        ],
    )
    assert overhead_ratio >= 0.80, (
        f"WAL overhead too high: ratio {overhead_ratio:.2f}"
    )
    assert realtime_factor >= 20.0, (
        f"replay only {realtime_factor:.1f}x real time"
    )
