"""Figure 11: the same transmitter reads differently across handsets.

Paper: "the strength of the signal received from an iBeacon antenna,
considering the same transmitter and the same distance, changes
significantly between different devices.  Figure 11 shows an example
of two smartphones, a Nexus 5 and S3 mini, positioned at the same
distance."
"""

from conftest import print_table, run_once

from repro.core.experiments import device_offset_experiment


def test_fig11_device_offsets(benchmark):
    result = run_once(
        benchmark,
        device_offset_experiment,
        devices=("nexus_5", "s3_mini", "iphone_5s"),
        distance_m=2.0,
        n_cycles=60,
        seed=3,
    )
    rows = [
        (
            device,
            "distinct levels",
            f"{result.mean_rssi[device]:.1f} dBm (std {result.std_rssi[device]:.1f})",
        )
        for device in ("nexus_5", "s3_mini", "iphone_5s")
    ]
    rows.append(
        (
            "Nexus 5 - S3 Mini gap",
            "clearly visible",
            f"{result.gap_db('nexus_5', 's3_mini'):+.1f} dB",
        )
    )
    print_table("Figure 11: per-device RSSI at the same 2 m link", rows)

    # Shape: a systematic, clearly visible gap between the handsets at
    # the identical link (several dB, Nexus 5 reading stronger).
    gap = result.gap_db("nexus_5", "s3_mini")
    assert 3.0 < gap < 10.0
