"""Warm-start incremental refresh vs cold refit on new calibration.

Online recalibration adds a handful of fingerprints for one room; the
paper's pipeline would retrain the whole one-vs-one ensemble from
scratch.  :meth:`SupportVectorClassifier.refresh` refits only the
class pairs the new rows touch — with 10 rooms and new data in one,
that is 9 of 45 machines — against a Gram matrix extended in
O(n*m) instead of recomputed in O(n^2).

Two things are asserted, in this order:

1. **Correctness, unconditionally**: the refreshed model is
   byte-identical — alphas, intercepts, support indices — to a cold
   fit on the concatenated dataset.
2. **Speed**: refresh sustains >= 3x the cold-refit rate on hosts
   with >= 2 usable cores (single-core CI boxes still run the
   equality check, the bar just relaxes to >= 1.5x).
"""

import time

import numpy as np

from conftest import print_table
from repro.ml import gram_cache
from repro.ml.kernels import RbfKernel
from repro.ml.svm import SupportVectorClassifier
from repro.parallel import available_workers

N_CLASSES = 10
N_PER_CLASS = 36
N_NEW = 16
D = 6


def _clusters(seed, n_classes, n_per, d):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-5.0, 5.0, size=(n_classes, d))
    X = np.concatenate(
        [c + rng.normal(scale=1.1, size=(n_per, d)) for c in centers]
    )
    y = np.repeat(np.arange(n_classes), n_per)
    return X, y


def _state(svc):
    return {
        pair: (
            machine.dual_coef_.tobytes(),
            machine.intercept_,
            machine.support_indices_.tobytes(),
        )
        for pair, machine in svc._machines.items()
    }


def _make():
    return SupportVectorClassifier(
        c=5.0, kernel=RbfKernel(gamma=0.05), seed=0
    )


def test_perf_incremental_refresh(benchmark):
    X, y = _clusters(0, N_CLASSES, N_PER_CLASS, D)
    rng = np.random.default_rng(1)
    base = X[y == 0]
    X_new = base[rng.choice(len(base), size=N_NEW)] + rng.normal(
        scale=0.3, size=(N_NEW, D)
    )
    y_new = np.zeros(N_NEW, dtype=int)
    X_all = np.vstack([X, X_new])
    y_all = np.concatenate([y, y_new])

    warm = _make()
    warm.fit(X, y)

    def run_refresh():
        t0 = time.perf_counter()
        warm.refresh(X_new, y_new)
        return time.perf_counter() - t0

    refresh_s = benchmark.pedantic(run_refresh, rounds=1, iterations=1)

    # Cold refit: a fresh model, a cleared cache — the full Gram is
    # recomputed and all 28 pairs solved from zero, exactly what a
    # paper-style retrain pays.
    gram_cache.default_cache().clear()
    cold = _make()
    t0 = time.perf_counter()
    cold.fit(X_all, y_all)
    cold_s = time.perf_counter() - t0

    # Correctness first, unconditionally: byte-identical models.
    assert _state(warm) == _state(cold)
    assert list(warm.classes_) == list(cold.classes_)
    stats = warm.refresh_stats_
    assert stats["refitted_pairs"] == N_CLASSES - 1
    assert stats["reused_pairs"] == (N_CLASSES - 1) * (N_CLASSES - 2) // 2

    speedup = cold_s / refresh_s
    print_table(
        "Incremental refresh vs cold refit "
        f"({N_CLASSES} rooms, {N_NEW} new rows in one)",
        [
            ("cold refit (s)", "full retrain", f"{cold_s:.3f}"),
            ("refresh (s)", "n/a (ours)", f"{refresh_s:.3f}"),
            (
                "refitted pairs",
                f"{N_CLASSES * (N_CLASSES - 1) // 2} (full retrain)",
                f"{stats['refitted_pairs']}",
            ),
            ("speedup", ">= 3x", f"{speedup:.1f}x"),
        ],
    )
    floor = 3.0 if available_workers() >= 2 else 1.5
    assert speedup >= floor, (
        f"refresh speedup {speedup:.2f}x below the {floor}x floor"
    )
