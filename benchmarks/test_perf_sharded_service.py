"""Sharded BMS ingestion vs the single-store server at 100k devices.

The paper's server ingests one ``POST /sightings`` at a time into one
in-memory store — each post paying Python dispatch plus a per-row SVM
predict.  The sharded front door packs arriving sightings into
coalesced per-shard batches and drains them through the vectorised
batch predict (on a worker pool when cores allow), so the sustained
sightings/sec rate scales far past the loose-post path.

Two things are asserted, in this order:

1. **Correctness, unconditionally**: ingest results and occupancy
   snapshots are byte-identical across shard counts (1 vs 4) and
   worker counts (1 vs 2), and the sharded rooms match the
   single-store rooms for the same sightings.
2. **Throughput**: the sharded pipeline sustains >= 3x the
   single-store sightings/sec on hosts with >= 2 usable cores (the
   vectorised coalescing alone clears a lower bar on one core).
"""

import json
import time

import numpy as np

from conftest import print_table
from repro.parallel import available_workers
from repro.server.bms import BuildingManagementServer
from repro.server.rest import Request
from repro.server.sharded import ShardedBmsService

N_DEVICES = 100_000
SINGLE_SUBSET = 2_000
POST_BATCH = 5_000
COALESCE = 1_000
SHARDS = 4

BEACON_IDS = [f"1-{i}" for i in range(1, 7)]
ROOMS = ["kitchen", "living", "bedroom"]


def _calibration_rows(seed=0):
    """Deterministic labelled fingerprints (30 per room)."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(30):
        for r, room in enumerate(ROOMS):
            beacons = {
                b: float(abs(rng.normal(1.0 if i // 2 == r else 8.0, 0.5)))
                for i, b in enumerate(BEACON_IDS)
            }
            rows.append((room, beacons))
    return rows


def _sightings(n, seed=1):
    """One sighting per simulated device, constant logical time."""
    rng = np.random.default_rng(seed)
    distances = rng.uniform(0.5, 9.0, size=(n, len(BEACON_IDS)))
    return [
        {
            "device_id": f"dev-{k:06d}",
            "beacons": {b: float(row[i]) for i, b in enumerate(BEACON_IDS)},
            "time": 1.0,
        }
        for k, row in zip(range(n), distances)
    ]


def _calibrate(server, rows):
    for room, beacons in rows:
        server.add_fingerprint(room, beacons, 0.0)
    server.train()


def _single_store_rate(rows, sightings):
    """Loose-post sightings/sec of the paper's single-store server."""
    bms = BuildingManagementServer(BEACON_IDS)
    _calibrate(bms, rows)
    t0 = time.perf_counter()
    rooms = [
        bms.router.dispatch(
            Request("POST", "/sightings", body=s, time=s["time"])
        ).body["room"]
        for s in sightings
    ]
    elapsed = time.perf_counter() - t0
    return len(sightings) / elapsed, rooms


def _sharded_run(rows, sightings, shards, workers):
    """Full sharded ingest; returns (rate, drain entries, occupancy)."""
    service = ShardedBmsService(
        BEACON_IDS,
        shards=shards,
        queue_maxsize=2 * N_DEVICES,
        coalesce_max=COALESCE,
        drain_policy="manual",
        backend="pool",
        workers=workers,
    )
    _calibrate(service, rows)
    t0 = time.perf_counter()
    for start in range(0, len(sightings), POST_BATCH):
        response = service.router.dispatch(
            Request(
                "POST",
                "/sightings/batch",
                body={"sightings": sightings[start : start + POST_BATCH]},
                time=1.0,
            )
        )
        assert response.status == 202, response
    result = service.drain()
    elapsed = time.perf_counter() - t0
    snap = service.snapshot()
    occupancy = json.dumps(
        {"time": snap.time, "rooms": snap.rooms, "devices": snap.devices},
        sort_keys=True,
    )
    return len(sightings) / elapsed, result.entries, occupancy


def test_perf_sharded_vs_single_ingest():
    cores = available_workers()
    rows = _calibration_rows()
    sightings = _sightings(N_DEVICES)

    rate_single, rooms_single = _single_store_rate(
        rows, sightings[:SINGLE_SUBSET]
    )
    rate_sharded, entries, occupancy = _sharded_run(
        rows, sightings, shards=SHARDS, workers=min(4, cores)
    )

    # Correctness before speed, unconditionally:
    # (a) the sharded pipeline classifies exactly like the single store;
    assert [room for _, _, room in entries[:SINGLE_SUBSET]] == rooms_single
    # (b) results are invariant to the shard count;
    _, entries_one, occupancy_one = _sharded_run(
        rows, sightings, shards=1, workers=1
    )
    assert entries == entries_one
    assert occupancy == occupancy_one
    # (c) and to the worker count (serial vs forced 2-worker pool).
    _, entries_pool, occupancy_pool = _sharded_run(
        rows, sightings, shards=SHARDS, workers=2
    )
    assert entries == entries_pool
    assert occupancy == occupancy_pool

    speedup = rate_sharded / rate_single
    print_table(
        f"Sharded ingestion, {N_DEVICES} devices, {SHARDS} shards",
        [
            ("single-store (sightings/s)", "-", f"{rate_single:.0f}"),
            ("sharded (sightings/s)", "-", f"{rate_sharded:.0f}"),
            ("usable cores", "-", f"{cores}"),
            ("speedup", ">= 3x on >= 2 cores", f"{speedup:.1f}x"),
        ],
    )
    if cores >= 2:
        assert speedup >= 3.0, f"sharded only {speedup:.1f}x on {cores} cores"
    else:
        # One core still amortises dispatch + predict across the batch.
        assert speedup >= 2.0, f"sharded only {speedup:.1f}x on one core"
