"""Ablation: SVM hyper-parameters and multiclass reduction.

The paper reports using "SVM with the Radial Basis Function kernel, as
suggested by [Redpin]" but no hyper-parameters.  This bench maps the
(C, gamma) landscape on the Figure 9 task to show the result is a
plateau (i.e. the headline number is not a tuned fluke), and compares
one-vs-one against one-vs-rest multiclass reductions.
"""

from conftest import print_table, run_once

from repro.building.presets import test_house as make_test_house
from repro.core.calibration import dataset_from_trace
from repro.ml.datasets import FingerprintVectorizer
from repro.ml.kernels import RbfKernel
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.scaling import StandardScaler
from repro.ml.svm import BinarySVM, SupportVectorClassifier
from repro.radio.channel import ChannelModel
from repro.sim.rng import derive_seed
from repro.traces.synth import synthesize_survey_trace

C_VALUES = (1.0, 10.0, 100.0)
GAMMAS = (0.1, 0.5, 2.0)


def _data():
    plan = make_test_house()
    channel = ChannelModel(seed=99)

    def survey(seed, points):
        return dataset_from_trace(
            synthesize_survey_trace(
                plan, points_per_room=points, dwell_s=24.0,
                seed=seed, channel=channel,
            )
        )

    train = survey(derive_seed(3, "train"), 6)
    test = survey(derive_seed(3, "test"), 4)
    vectorizer = FingerprintVectorizer(plan.beacon_ids)
    X_train, y_train, _ = train.to_matrix(vectorizer)
    X_test, y_test, _ = test.to_matrix(vectorizer)
    scaler = StandardScaler()
    return (
        scaler.fit_transform(X_train), y_train,
        scaler.transform(X_test), y_test,
    )


def _sweep():
    X_train, y_train, X_test, y_test = _data()
    grid = {}
    for c in C_VALUES:
        for gamma in GAMMAS:
            model = SupportVectorClassifier(c=c, kernel=RbfKernel(gamma))
            model.fit(X_train, y_train)
            grid[(c, gamma)] = model.score(X_test, y_test)
    ovr = OneVsRestClassifier(
        lambda: BinarySVM(c=10.0, kernel=RbfKernel(0.5))
    ).fit(X_train, y_train)
    grid["ovr"] = ovr.score(X_test, y_test)
    return grid


def test_ablation_svm_hyperparams(benchmark):
    grid = run_once(benchmark, _sweep)
    rows = [
        (f"C={c:g}, gamma={g:g}", "unreported", f"{grid[(c, g)]:.1%}")
        for c in C_VALUES
        for g in GAMMAS
    ]
    rows.append(("one-vs-rest (C=10, g=0.5)", "vs one-vs-one", f"{grid['ovr']:.1%}"))
    print_table("Ablation: SVM (C, gamma) landscape + multiclass reduction", rows)

    accuracies = [grid[(c, g)] for c in C_VALUES for g in GAMMAS]
    # Plateau: the bulk of the grid performs well; the paper's number
    # does not hinge on a single magic setting.
    good = [a for a in accuracies if a > 0.88]
    assert len(good) >= 6
    # OvR and OvO agree to within a few points.
    assert abs(grid["ovr"] - grid[(10.0, 0.5)]) < 0.05
