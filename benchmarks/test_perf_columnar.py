"""Columnar fleet drive: struct-of-arrays speedup, identical answer.

The columnar engine (:mod:`repro.fleet.columnar`) replays the scalar
per-device event loop as numpy passes over (device x beacon) arrays.
Its contract is byte-identity — same DetectionRun, same reports, same
region events — so this benchmark asserts equality *unconditionally*
and then measures the wall-clock win on the drive phase, which grows
with fleet size (the scalar loop is O(devices) python dispatch per
scan tick, the columnar one amortises it).

The >= 5x bar applies on hosts with >= 2 usable cores (numpy gets
vector width regardless, but single-core containers throttle the
BLAS/memory subsystem enough to warrant the softer >= 2x bar).
"""

import time

from conftest import print_table

from repro.building.mobility import RandomWaypoint
from repro.building.occupant import Occupant
from repro.building.presets import test_house as make_test_house
from repro.core.config import SystemConfig
from repro.core.system import OccupancyDetectionSystem
from repro.fleet.columnar import run_columnar
from repro.obs.metrics import MetricsRegistry
from repro.parallel import available_workers
from repro.sim.rng import derive_seed

DEVICES = 24
DURATION_S = 60.0
SEED = 3
REPEATS = 2


def _build_system():
    plan = make_test_house()
    config = SystemConfig(seed=SEED, platform="android", uplink_batch_size=4)
    system = OccupancyDetectionSystem(plan, config, registry=MetricsRegistry())
    system.calibrate(duration_s=120.0)
    system.train()
    for i in range(DEVICES):
        mobility = RandomWaypoint(plan, seed=derive_seed(SEED, f"fleet:{i}"))
        system.add_occupant(Occupant(f"dev-{i:04d}", mobility))
    return system


def _timed_drives(drive, repeats=REPEATS):
    """Best-of-N wall time of the drive phase on fresh systems.

    A run mutates app/tracker/server state, so every repetition gets
    its own identically-seeded system; only the drive is timed.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        system = _build_system()
        t0 = time.perf_counter()
        result = drive(system)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_perf_columnar_fleet_drive():
    cores = available_workers()
    t_scalar, run_scalar = _timed_drives(lambda s: s.run(DURATION_S))
    t_columnar, run_columnar_result = _timed_drives(
        lambda s: run_columnar(s, DURATION_S)
    )

    # The acceptance property first: both engines produce the same
    # detection run, whatever this host's core budget.
    assert run_columnar_result.predictions == run_scalar.predictions
    assert repr(run_columnar_result.accuracy) == repr(run_scalar.accuracy)

    speedup = t_scalar / t_columnar
    print_table(
        f"Columnar fleet drive, {DEVICES} devices, {DURATION_S:.0f} s",
        [
            ("usable cores", "-", f"{cores}"),
            ("scalar drive (s)", "-", f"{t_scalar:.2f}"),
            ("columnar drive (s)", "-", f"{t_columnar:.2f}"),
            (
                "scalar devices/sec",
                "-",
                f"{DEVICES / t_scalar:.1f}",
            ),
            (
                "columnar devices/sec",
                "-",
                f"{DEVICES / t_columnar:.1f}",
            ),
            ("speedup", ">= 5x on >= 2 cores", f"{speedup:.2f}x"),
        ],
    )

    if cores >= 2:
        assert speedup >= 5.0, (
            f"columnar only {speedup:.2f}x faster on {cores} cores"
        )
    else:
        assert speedup >= 2.0, (
            f"columnar only {speedup:.2f}x faster on {cores} cores"
        )
