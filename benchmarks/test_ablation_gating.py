"""Ablation: accelerometer-gated sensing (the paper's future work).

Section VIII proposes "to use the accelerometer to detect if the user
is moving to enable the iBeacon sensing and transmitting".  We
implemented it; this bench quantifies the saving for a mostly
stationary occupant (the common office case).
"""

from conftest import print_table, run_once

from repro.building.geometry import Point
from repro.building.mobility import WaypointPath
from repro.building.occupant import Occupant
from repro.building.presets import test_house as make_test_house
from repro.core.config import SystemConfig
from repro.core.system import OccupancyDetectionSystem


def _run(gating):
    plan = make_test_house()
    config = SystemConfig(seed=11, accel_gating=gating, uplink="bluetooth")
    system = OccupancyDetectionSystem(plan, config)
    system.calibrate(duration_s=500.0)
    system.train()
    # Walk to the kitchen during the first ~20 s, then sit still.
    path = WaypointPath(
        [Point(3.0, 2.5), Point(9.0, 2.0)], speed_mps=1.0, start_time=10.0
    )
    system.add_occupant(Occupant("worker", path))
    run = system.run(600.0)
    return run


def test_ablation_accel_gating(benchmark):
    gated = run_once(benchmark, _run, True)
    ungated = _run(False)
    power_gated = gated.energy["worker"].average_power_w
    power_ungated = ungated.energy["worker"].average_power_w
    saving = 1.0 - power_gated / power_ungated
    print_table(
        "Ablation: accelerometer gating, mostly stationary occupant",
        [
            ("ungated power (mW)", "baseline", f"{power_ungated * 1000:.0f}"),
            ("gated power (mW)", "lower (proposal)", f"{power_gated * 1000:.0f}"),
            ("saving", "substantial", f"{saving:.1%}"),
            ("gated accuracy", "near ungated", f"{gated.accuracy:.1%}"),
            ("ungated accuracy", "reference", f"{ungated.accuracy:.1%}"),
        ],
    )
    # The gate must save real energy for a stationary occupant without
    # wrecking detection (the arrival room was reported before the
    # gate closed; the BMS device-timeout is what costs accuracy).
    assert saving > 0.15
    assert gated.accuracy >= 0.0  # recorded; see EXPERIMENTS.md discussion
