"""Ablation: scan-period sweep (the latency/accuracy dial of Section V).

The paper contrasts 2 s and 5 s; this sweep maps the whole dial,
including the latency cost the paper warns about ("increasing the scan
period, the estimation phase takes a longer time, causing the
application to be less reactive").

The (period, seed) grid fans out through :func:`repro.parallel.sweep`:
each point carries its own seed, so the result is identical at any
worker count and the sweep parallelises for free on multi-core hosts.
"""

import numpy as np
from conftest import print_table, run_once

from repro.core.experiments import static_signal_experiment
from repro.parallel import available_workers, sweep

PERIODS = (1.0, 2.0, 5.0, 10.0)
SEEDS = (0, 1, 2, 3)


def _evaluate_point(point):
    """Sweep worker: std of the static 2 m link at one (period, seed)."""
    period, seed = point
    return static_signal_experiment(
        scan_period_s=period, distance_m=2.0, duration_s=120.0, seed=seed
    ).std_m


def _sweep():
    points = [(period, seed) for period in PERIODS for seed in SEEDS]
    stds = sweep(
        _evaluate_point,
        points,
        workers=min(4, available_workers()),
        name="scan-period",
    )
    out = {}
    for period in PERIODS:
        values = [s for (p, _), s in zip(points, stds) if p == period]
        out[period] = float(np.mean(values))
    return out


def test_ablation_scan_period(benchmark):
    results = run_once(benchmark, _sweep)
    rows = [
        (
            f"{period:.0f} s period",
            "2 s noisy / 5 s smooth",
            f"std {results[period]:.2f} m, est. latency {period:.0f} s",
        )
        for period in PERIODS
    ]
    print_table("Ablation: scan-period sweep on the static 2 m link", rows)

    # Longer periods aggregate more hardware-scan samples: the spread
    # at 10 s must be below the spread at 2 s (1 s has the same single
    # sample per estimate as 2 s, so we only assert the long end).
    assert results[10.0] < results[2.0]
    assert results[5.0] < results[2.0]
