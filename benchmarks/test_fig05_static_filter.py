"""Figure 5 (labelled "Signal static evaluation, Coeff = 0.65").

The paper's history filter applied to the static trace: same link as
Figure 4, fluctuation visibly suppressed.
"""

from conftest import print_table, run_once

from repro.core.experiments import static_signal_experiment


def test_fig05_static_filtered(benchmark):
    filtered = run_once(
        benchmark,
        static_signal_experiment,
        scan_period_s=2.0,
        coefficient=0.65,
        distance_m=2.0,
        duration_s=120.0,
        seed=1,
    )
    raw = static_signal_experiment(
        scan_period_s=2.0, distance_m=2.0, duration_s=120.0, seed=1
    )
    print_table(
        "Figure 5: history filter (coeff 0.65) on the static trace",
        [
            ("raw std (m)", "large", f"{raw.std_m:.2f}"),
            ("filtered std (m)", "stable", f"{filtered.std_m:.2f}"),
            ("suppression", "clear (qualitative)", f"{1 - filtered.std_m / raw.std_m:.0%}"),
            ("filtered mean (m)", "~2", f"{filtered.mean_m:.2f}"),
        ],
    )
    assert filtered.std_m < raw.std_m
    # The filter must not bias the level, only smooth it.
    assert abs(filtered.mean_m - raw.mean_m) < 1.0
