"""Ablation: the triangulation technique the paper discarded.

Section VI: "Triangulation has been discarded because it requires very
stable and accurate input data and due to the signal fluctuation we
decided to not use this technique."

This bench reproduces that design decision quantitatively: room
inference via multilateration of the (fluctuating) distance estimates
is compared against the paper's Scene Analysis SVM on identical
fingerprints.
"""

from conftest import print_table, run_once

from repro.building.presets import test_house as make_test_house
from repro.core.calibration import dataset_from_trace
from repro.ml.datasets import FingerprintVectorizer
from repro.ml.kernels import RbfKernel
from repro.ml.scaling import StandardScaler
from repro.ml.svm import SupportVectorClassifier
from repro.positioning.room_inference import GeometricRoomClassifier
from repro.radio.channel import ChannelModel
from repro.sim.rng import derive_seed
from repro.traces.synth import synthesize_survey_trace


def _compare():
    plan = make_test_house()
    channel = ChannelModel(seed=99)

    def survey(seed, points):
        return dataset_from_trace(
            synthesize_survey_trace(
                plan, points_per_room=points, dwell_s=24.0,
                seed=seed, channel=channel,
            )
        )

    train = survey(derive_seed(3, "train"), 6)
    test = survey(derive_seed(3, "test"), 4)
    vectorizer = FingerprintVectorizer(plan.beacon_ids)
    X_train, y_train, _ = train.to_matrix(vectorizer)
    X_test, y_test, _ = test.to_matrix(vectorizer)

    scaler = StandardScaler()
    svm = SupportVectorClassifier(c=10.0, kernel=RbfKernel(0.5))
    svm.fit(scaler.fit_transform(X_train), y_train)
    svm_accuracy = svm.score(scaler.transform(X_test), y_test)

    geometric = GeometricRoomClassifier(plan, plan.beacon_ids)
    geo_accuracy = geometric.score(X_test, y_test)
    return svm_accuracy, geo_accuracy


def test_ablation_triangulation(benchmark):
    svm_accuracy, geo_accuracy = run_once(benchmark, _compare)
    print_table(
        "Ablation: triangulation (discarded in Section VI) vs Scene Analysis",
        [
            ("Scene Analysis SVM", "chosen (~94 %)", f"{svm_accuracy:.1%}"),
            ("trilateration + lookup", "discarded (fluctuation)", f"{geo_accuracy:.1%}"),
            ("gap", "substantial", f"{(svm_accuracy - geo_accuracy) * 100:.1f} pts"),
        ],
    )
    # The paper's decision must hold: geometry on fluctuating distance
    # estimates clearly loses to learned fingerprints.
    assert svm_accuracy > geo_accuracy + 0.05
