"""Micro-benchmarks of the hot paths (true timing benchmarks).

Unlike the figure benches (one-shot experiments), these measure the
throughput of the inner loops: packet codec, channel sampling, kernel
evaluation, SMO training and the end-to-end scan cycle.
"""

import numpy as np

from repro.ble.air import AirInterface
from repro.building.geometry import Point
from repro.building.presets import BUILDING_UUID, test_house as make_test_house
from repro.ibeacon.packet import IBeaconPacket, decode_packet
from repro.ml.kernels import RbfKernel
from repro.ml.svm import SupportVectorClassifier
from repro.phone.scanner import AndroidScanner
from repro.radio.channel import ChannelModel
from repro.radio.devices import DEVICE_PROFILES


def test_perf_packet_roundtrip(benchmark):
    packet = IBeaconPacket(uuid=BUILDING_UUID, major=1, minor=7, tx_power=-59)

    def roundtrip():
        return decode_packet(packet.encode())

    assert benchmark(roundtrip) == packet


def test_perf_channel_sample(benchmark):
    channel = ChannelModel(seed=1)
    rng = np.random.default_rng(0)
    device = DEVICE_PROFILES["s3_mini"]

    def sample():
        return channel.link_budget("b1", (0.0, 0.0), (3.0, 4.0), -59.0, device, rng)

    budget = benchmark(sample)
    assert budget.distance_m == 5.0


def test_perf_rbf_kernel(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 6))
    kernel = RbfKernel(0.5)

    K = benchmark(kernel, X, X)
    assert K.shape == (200, 200)


def test_perf_svm_fit(benchmark):
    rng = np.random.default_rng(0)
    X = np.vstack(
        [rng.normal((0, 0), 0.7, (40, 2)), rng.normal((3, 0), 0.7, (40, 2)),
         rng.normal((0, 3), 0.7, (40, 2))]
    )
    y = np.array(["a"] * 40 + ["b"] * 40 + ["c"] * 40)

    def fit():
        return SupportVectorClassifier(c=5.0).fit(X, y)

    model = benchmark(fit)
    assert model.score(X, y) > 0.9


def test_perf_scan_cycle(benchmark):
    plan = make_test_house()
    air = AirInterface(plan, ChannelModel(seed=2))
    scanner = AndroidScanner(air, device="s3_mini", rng=np.random.default_rng(1))
    position = Point(3.0, 2.5)

    def cycle():
        return scanner.scan_cycle(lambda t: position, 0.0)

    result = benchmark(cycle)
    assert result.t_end == 2.0
