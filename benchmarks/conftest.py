"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one figure (or headline claim) of the
paper, prints a paper-vs-measured table, and asserts that the *shape*
of the result holds (who wins, roughly by how much).  Timing is taken
with a single round: the quantity of interest is the experimental
output, not the runtime of the harness.

Besides printing, every table row is captured and — together with the
test's pass/fail outcome — appended to ``BENCH_results.json`` at the
repository root when the session ends, so successive benchmark runs
build a machine-readable paper-vs-measured trajectory.
"""

import json
from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"

#: nodeid -> list of row dicts captured by :func:`print_table`.
_tables = {}

#: nodeid -> "passed" / "failed" outcome of the call phase.
_outcomes = {}

#: nodeid of the test currently executing (tables attribute to it).
_current_nodeid = None


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_table(title, rows):
    """Print an aligned paper-vs-measured table and capture its rows.

    Args:
        title: table heading.
        rows: list of (label, paper_value, measured_value) strings.
    """
    print()
    print(f"=== {title} ===")
    width = max(len(r[0]) for r in rows)
    print(f"{'quantity':<{width}}  {'paper':>18}  {'measured':>18}")
    for label, paper, measured in rows:
        print(f"{label:<{width}}  {paper:>18}  {measured:>18}")
    if _current_nodeid is not None:
        _tables.setdefault(_current_nodeid, []).extend(
            {
                "title": title,
                "label": str(label),
                "paper": str(paper),
                "measured": str(measured),
            }
            for label, paper, measured in rows
        )


def pytest_runtest_setup(item):
    global _current_nodeid
    _current_nodeid = item.nodeid


def pytest_runtest_logreport(report):
    if report.when == "call":
        _outcomes[report.nodeid] = report.outcome


def _check_row(row):
    """Validate one result row against the persistence schema.

    The perf-regression gate (:mod:`repro.obs.bench`) consumes these
    rows, so a malformed row must fail the benchmark session loudly
    here rather than silently corrupting the history it gates on.
    """
    for key in ("test", "title", "label", "paper", "measured"):
        value = row.get(key)
        if not isinstance(value, str) or not value.strip():
            raise ValueError(
                f"benchmark result row has invalid {key!r}: {value!r} (row: {row})"
            )
    if not isinstance(row.get("passed"), bool):
        raise ValueError(f"benchmark result row has non-bool 'passed': {row}")


def pytest_sessionfinish(session, exitstatus):
    """Append this session's captured tables to ``BENCH_results.json``.

    Each appended session entry carries a ``run_id`` (its position in
    the history) so downstream tooling can identify the latest run
    without relying on list order alone.
    """
    if not _tables:
        return
    results = []
    for nodeid, rows in sorted(_tables.items()):
        passed = _outcomes.get(nodeid) == "passed"
        for row in rows:
            result = {"test": nodeid, "passed": passed, **row}
            _check_row(result)
            results.append(result)
    try:
        history = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
        if not isinstance(history, list):
            history = []
    except (OSError, json.JSONDecodeError):
        history = []
    history.append({"run_id": len(history), "results": results})
    RESULTS_PATH.write_text(
        json.dumps(history, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.fixture(autouse=True)
def _clear_current_nodeid_after_test():
    yield
    global _current_nodeid
    _current_nodeid = None
