"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one figure (or headline claim) of the
paper, prints a paper-vs-measured table, and asserts that the *shape*
of the result holds (who wins, roughly by how much).  Timing is taken
with a single round: the quantity of interest is the experimental
output, not the runtime of the harness.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_table(title, rows):
    """Print an aligned paper-vs-measured table.

    Args:
        title: table heading.
        rows: list of (label, paper_value, measured_value) strings.
    """
    print()
    print(f"=== {title} ===")
    width = max(len(r[0]) for r in rows)
    print(f"{'quantity':<{width}}  {'paper':>18}  {'measured':>18}")
    for label, paper, measured in rows:
        print(f"{label:<{width}}  {paper:>18}  {measured:>18}")
