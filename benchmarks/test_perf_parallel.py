"""Parallel fleet execution: wall-clock speedup, identical answer.

The deterministic shard engine promises two things: (1) sharded fleet
runs scale with the worker pool, and (2) the worker count never
changes the result.  This benchmark measures (1) and asserts (2)
unconditionally.  The hard >= 2x speedup bar applies on hosts with at
least four usable cores; containers pinned to fewer CPUs cannot
physically show it and only assert the invariance plus a bounded
overhead.
"""

import time

from conftest import print_table

from repro.building.presets import two_room_corridor
from repro.fleet import FleetLoadGenerator
from repro.parallel import available_workers

SHARDS = 4
POOL = 4


def _timed(fn, repeats=2):
    """Best-of-N wall time of ``fn`` (seconds) and its last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _sharded_fleet(workers):
    return FleetLoadGenerator(
        devices=8,
        duration_s=40.0,
        batch_size=4,
        batch_delay_s=8.0,
        calibration_s=120.0,
        seed=3,
        plan=two_room_corridor(),
        shards=SHARDS,
        workers=workers,
    ).run()


def test_perf_parallel_fleet_speedup():
    cores = available_workers()
    t_serial, serial = _timed(lambda: _sharded_fleet(1))
    t_pool, pooled = _timed(lambda: _sharded_fleet(POOL))

    # The acceptance property first: the answer never depends on the
    # worker count, whatever this host's core budget.
    assert pooled == serial

    speedup = t_serial / t_pool
    print_table(
        f"Parallel fleet run, {SHARDS} shards, {POOL} workers",
        [
            ("usable cores", "-", f"{cores}"),
            ("serial (s)", "-", f"{t_serial:.2f}"),
            (f"{POOL} workers (s)", "-", f"{t_pool:.2f}"),
            ("speedup", ">= 2x on >= 4 cores", f"{speedup:.2f}x"),
        ],
    )

    if cores >= 4:
        assert speedup >= 2.0, f"pool only {speedup:.2f}x faster on {cores} cores"
    elif cores >= 2:
        assert speedup >= 1.2, f"pool only {speedup:.2f}x faster on {cores} cores"
    else:
        # Single usable core: parallelism cannot win wall clock; the
        # pool must still finish within reasonable overhead of serial.
        assert t_pool <= t_serial * 3.0, (
            f"pool run {t_pool:.2f}s vs serial {t_serial:.2f}s on one core"
        )
