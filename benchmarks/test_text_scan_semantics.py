"""Section V worked example: Android vs iOS samples in a 10 s window.

Paper: "having a scan period of two seconds and an iBeacon generator
that transmits thirty times per second, an Android device that scans
for ten seconds gets only five samples ... an iOS device receives
three hundred samples."
"""

from conftest import print_table, run_once

from repro.core.experiments import scan_semantics_experiment


def test_scan_semantics(benchmark):
    result = run_once(
        benchmark,
        scan_semantics_experiment,
        window_s=10.0,
        scan_period_s=2.0,
        adv_rate_hz=30.0,
    )
    print_table(
        "Section V example: samples in a 10 s window (30 Hz advertiser)",
        [
            ("Android samples", "5", f"{result.android_samples}"),
            ("iOS samples", "300", f"{result.ios_samples}"),
            ("ratio", "60x", f"{result.ratio:.0f}x"),
        ],
    )
    # The paper's back-of-envelope numbers, reproduced exactly (the
    # ideal receiver removes losses).
    assert result.android_samples == 5
    assert 280 <= result.ios_samples <= 300
