"""Figure 6: static signal with the scan period raised to 5 s.

Paper: "we increased the scan period to collect more sample obtaining
more accurate distance estimations."
"""

import numpy as np
from conftest import print_table, run_once

from repro.core.experiments import static_signal_experiment

SEEDS = (0, 1, 2, 3, 4, 5)


def _mean_std(scan_period_s):
    return float(
        np.mean(
            [
                static_signal_experiment(
                    scan_period_s=scan_period_s, distance_m=2.0,
                    duration_s=120.0, seed=s,
                ).std_m
                for s in SEEDS
            ]
        )
    )


def test_fig06_static_5s(benchmark):
    std_5s = run_once(benchmark, _mean_std, 5.0)
    std_2s = _mean_std(2.0)
    print_table(
        "Figure 6: 5 s scan period vs Figure 4's 2 s (mean std over seeds)",
        [
            ("std @ 2 s scans (m)", "large", f"{std_2s:.2f}"),
            ("std @ 5 s scans (m)", "visibly smaller", f"{std_5s:.2f}"),
            ("reduction", ">0 (qualitative)", f"{1 - std_5s / std_2s:.0%}"),
        ],
    )
    assert std_5s < std_2s
