"""SVM training fast path: wall-clock speedup, byte-identical models.

The training-side fast path (``repro.ml.gram_cache``) promises two
things: (1) sharing one full-dataset Gram across one-vs-one pairs, CV
folds and grid-search candidates — plus the vectorised SMO
working-set scan — makes training substantially faster, and (2) the
fitted models are *byte-identical* to the legacy compute-per-fit
path.  This benchmark measures (1) on a campus-scale workload and
asserts (2) unconditionally.

The workload mirrors the paper's deployment scaled to a fleet: five
rooms, each fingerprinted by a handful of audible beacons out of a
building-wide bank of 768 beacon columns (the UJIIndoorLoc campus
dataset has 520 WAP columns of the same shape).  Wide fingerprints
are exactly where the shared Gram pays: the legacy path computes
O(candidates x folds) fold Grams at O(n^2 d) each, the fast path one.

The hard >= 3x grid-search bar applies on hosts with at least four
usable cores; loaded or pinned containers time too noisily for a
sharp bar and only assert the invariance plus a relaxed floor —
mirroring ``test_perf_parallel.py``.
"""

import time

import numpy as np
from conftest import print_table

from repro.ml import gram_cache
from repro.ml.kernels import RbfKernel
from repro.ml.model_selection import GridSearch
from repro.ml.svm import SupportVectorClassifier
from repro.parallel import available_workers

ROOMS = 5
PER_ROOM = 400
BEACONS = 768
C_GRID = [0.25, 1.0, 4.0, 16.0]
GAMMA = 3e-4


def _timed(fn, repeats=2):
    """Best-of-N wall time of ``fn`` (seconds) and its last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _fleet_fingerprints(seed=3, noise=1.0, audible=20):
    """RSSI fingerprints for ROOMS rooms over a BEACONS-wide fleet.

    Each room hears ``audible`` beacons near their calibrated level;
    every other column sits at the -100 dBm sentinel, as in the
    feature matrices ``repro.ml.features`` builds.
    """
    rng = np.random.default_rng(seed)
    X = np.full((ROOMS * PER_ROOM, BEACONS), -100.0)
    for room in range(ROOMS):
        heard = rng.choice(BEACONS, size=audible, replace=False)
        base = rng.uniform(-75.0, -45.0, size=audible)
        rows = slice(room * PER_ROOM, (room + 1) * PER_ROOM)
        block = base + rng.normal(scale=noise, size=(PER_ROOM, audible))
        X_room = X[rows].copy()
        X_room[:, heard] = block
        X[rows] = X_room
    X += rng.normal(scale=0.3, size=X.shape)
    y = np.repeat([f"room{i}" for i in range(ROOMS)], PER_ROOM)
    return X, y


def _fit_ovo(X, y):
    model = SupportVectorClassifier(
        c=1.0, kernel=RbfKernel(gamma=GAMMA), seed=0
    )
    return model.fit(X, y)


def _grid_search(X, y):
    grid = GridSearch(
        lambda p: SupportVectorClassifier(
            c=p["c"], kernel=RbfKernel(gamma=p["gamma"]), seed=0
        ),
        {"c": C_GRID, "gamma": [GAMMA]},
        n_splits=3,
        seed=0,
    )
    return grid.fit(X, y)


def _machines_identical(fast, legacy):
    """Byte-identity of every pairwise machine of two fitted OvO SVCs."""
    if sorted(fast._machines) != sorted(legacy._machines):
        return False
    for pair, machine in fast._machines.items():
        other = legacy._machines[pair]
        if not (
            np.array_equal(machine.dual_coef_, other.dual_coef_)
            and machine.intercept_ == other.intercept_
            and np.array_equal(
                machine.support_indices_, other.support_indices_
            )
        ):
            return False
    return True


def test_perf_svm_training_fast_path():
    cores = available_workers()
    X, y = _fleet_fingerprints()

    def fit_fast():
        gram_cache.default_cache().clear()
        return _fit_ovo(X, y)

    def fit_legacy():
        with gram_cache.training_fast_path_disabled():
            return _fit_ovo(X, y)

    def grid_fast():
        gram_cache.default_cache().clear()
        return _grid_search(X, y)

    def grid_legacy():
        with gram_cache.training_fast_path_disabled():
            return _grid_search(X, y)

    t_fit_fast, svc_fast = _timed(fit_fast)
    t_fit_legacy, svc_legacy = _timed(fit_legacy)
    t_grid_fast, gs_fast = _timed(grid_fast)
    t_grid_legacy, gs_legacy = _timed(grid_legacy)

    # The acceptance property first, unconditionally: the fast path
    # changes the wall clock and nothing else.
    assert _machines_identical(svc_fast, svc_legacy)
    assert gs_fast.results_ == gs_legacy.results_
    assert gs_fast.best_params_ == gs_legacy.best_params_
    assert gs_fast.best_score_ == gs_legacy.best_score_

    fit_speedup = t_fit_legacy / t_fit_fast
    grid_speedup = t_grid_legacy / t_grid_fast
    print_table(
        f"SVM training fast path, {ROOMS} rooms x {PER_ROOM}, "
        f"{BEACONS} beacons",
        [
            ("usable cores", "-", f"{cores}"),
            ("OvO fit legacy (s)", "-", f"{t_fit_legacy:.2f}"),
            ("OvO fit fast (s)", "-", f"{t_fit_fast:.2f}"),
            ("OvO fit speedup", "-", f"{fit_speedup:.2f}x"),
            (f"grid {len(C_GRID)}xC legacy (s)", "-", f"{t_grid_legacy:.2f}"),
            (f"grid {len(C_GRID)}xC fast (s)", "-", f"{t_grid_fast:.2f}"),
            ("grid speedup", ">= 3x on >= 4 cores", f"{grid_speedup:.2f}x"),
        ],
    )

    # The fast path is algorithmic, not parallel, but sharp timing
    # bars still need a quiet host; mirror the parallel benchmark's
    # core gating.
    if cores >= 4:
        assert grid_speedup >= 3.0, (
            f"grid search only {grid_speedup:.2f}x faster on {cores} cores"
        )
        assert fit_speedup >= 1.2, (
            f"OvO fit only {fit_speedup:.2f}x faster on {cores} cores"
        )
    elif cores >= 2:
        assert grid_speedup >= 2.0, (
            f"grid search only {grid_speedup:.2f}x faster on {cores} cores"
        )
    else:
        assert grid_speedup >= 1.2, (
            f"grid search only {grid_speedup:.2f}x faster on one core"
        )
