"""Figures 7-8: the stability/responsiveness trade-off of the filter.

Paper: "To determine the best trade-off for this coefficient some
dynamic tests have been performed by moving the device from one
transmitter to another at a speed of 1-1.5 m/s ... we found that 0.65
is a good trade off between stability and responsiveness."
"""

import numpy as np
from conftest import print_table, run_once

from repro.core.experiments import dynamic_filter_experiment

COEFFS = (0.0, 0.3, 0.5, 0.65, 0.8, 0.9)


def _sweep():
    """Average the sweep over a few walks to tame seed noise."""
    runs = [dynamic_filter_experiment(COEFFS, seed=s) for s in (2, 5, 9)]
    merged = []
    for i, coeff in enumerate(COEFFS):
        merged.append(
            {
                "coefficient": coeff,
                "lag": float(np.mean([r[i].handover_lag_s for r in runs])),
                "std": float(np.mean([r[i].static_std_m for r in runs])),
                "rmse": float(np.mean([r[i].tracking_rmse_m for r in runs])),
            }
        )
    return merged


def test_fig08_coefficient_tradeoff(benchmark):
    sweep = run_once(benchmark, _sweep)
    rows = [
        (
            f"coeff {r['coefficient']:.2f}",
            "0.65 chosen" if r["coefficient"] == 0.65 else "",
            f"lag {r['lag']:.1f}s  std {r['std']:.2f}m  rmse {r['rmse']:.2f}m",
        )
        for r in sweep
    ]
    print_table("Figures 7-8: history-coefficient sweep (walk at 1.2 m/s)", rows)

    by_coeff = {r["coefficient"]: r for r in sweep}
    # Shape 1: stability improves monotonically with the coefficient.
    stds = [by_coeff[c]["std"] for c in COEFFS]
    assert stds[-1] < stds[0]
    # Shape 2: responsiveness degrades at high coefficients.
    assert by_coeff[0.9]["lag"] > by_coeff[0.0]["lag"]
    # Shape 3: 0.65 is a genuine compromise - strictly better stability
    # than raw, and far less lag than 0.9 (the paper's conclusion).
    assert by_coeff[0.65]["std"] < by_coeff[0.0]["std"]
    assert by_coeff[0.65]["lag"] < by_coeff[0.9]["lag"]
