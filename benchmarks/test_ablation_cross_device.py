"""Ablation: cross-device deployment (the Section VIII open problem).

"the strength of the signal received from an iBeacon antenna,
considering the same transmitter and the same distance, changes
significantly between different devices ... A possible solution ...
might be to collect experimental information on the power strength
received by different devices and using them to tune the information
that is provided to the server during the setup phase."

This bench trains the fingerprint map with one handset, deploys with
another, and then applies the paper's proposed per-device offset
correction - closing the loop on the future-work item.
"""

from conftest import print_table, run_once

from repro.core.experiments import cross_device_experiment


def test_ablation_cross_device(benchmark):
    result = run_once(
        benchmark,
        cross_device_experiment,
        train_device="s3_mini",
        test_device="nexus_5",
    )
    print_table(
        "Ablation: train on S3 Mini, deploy on Nexus 5 (Section VIII)",
        [
            ("same-device accuracy", "reference", f"{result.same_device_accuracy:.1%}"),
            ("cross-device (raw)", "degrades (the problem)", f"{result.cross_device_accuracy:.1%}"),
            ("degradation", "significant", f"{result.degradation * 100:.1f} pts"),
            ("with offset correction", "proposed fix", f"{result.corrected_accuracy:.1%}"),
            ("recovered", "most of the loss", f"{result.recovered * 100:.1f} pts"),
        ],
    )
    # Shapes: switching devices hurts; the correction recovers a
    # meaningful share of the loss.
    assert result.degradation > 0.03
    assert result.recovered > 0.0
    assert result.corrected_accuracy > result.cross_device_accuracy
