"""Figure 4: static signal fluctuation with a 2 s scan period.

Paper: "Figure [4] shows the recorded values detected with D = 2 mt
with a Samsung S3 mini.  It can be observed that there is a large
variability of the estimated distance."
"""

from conftest import print_table, run_once

from repro.core.experiments import static_signal_experiment


def test_fig04_static_2s(benchmark):
    result = run_once(
        benchmark,
        static_signal_experiment,
        scan_period_s=2.0,
        distance_m=2.0,
        duration_s=120.0,
        device="s3_mini",
        seed=1,
    )
    print_table(
        "Figure 4: raw distance estimates, D = 2 m, 2 s scans, S3 Mini",
        [
            ("true distance (m)", "2.0", f"{result.true_distance_m:.1f}"),
            ("mean estimate (m)", "~2 (biased)", f"{result.mean_m:.2f}"),
            ("spread / std (m)", "large (qualitative)", f"{result.std_m:.2f}"),
            ("mean abs error (m)", "n/a", f"{result.mean_abs_error_m:.2f}"),
            ("lost cycles", "present (stack bugs)", f"{result.loss_ratio:.1%}"),
        ],
    )
    # Shape: visible fluctuation on raw 2 s estimates.
    assert result.std_m > 0.3
    assert 0.5 < result.mean_m < 6.0
