"""Tests for the transmitter board: HCI stack, node, TX calibration."""

import pytest

from repro.beacon_node.calibration import calibrate_tx_power
from repro.beacon_node.hci import HciError, HciStack
from repro.beacon_node.node import BeaconNode
from repro.building.geometry import Point
from repro.building.presets import BUILDING_UUID
from repro.ibeacon.packet import IBeaconPacket


def packet(tx_power=-59):
    return IBeaconPacket(uuid=BUILDING_UUID, major=1, minor=1, tx_power=tx_power)


class TestHciStack:
    def test_starts_down(self):
        assert not HciStack().powered

    def test_commands_require_power(self):
        hci = HciStack()
        with pytest.raises(HciError):
            hci.set_advertising_parameters(0.1)
        with pytest.raises(HciError):
            hci.set_advertising_data(b"\x01")
        with pytest.raises(HciError):
            hci.enable_advertising()

    def test_full_bringup_sequence(self):
        hci = HciStack()
        hci.up()
        hci.set_advertising_parameters(0.1)
        hci.set_advertising_data(packet().encode())
        hci.enable_advertising()
        assert hci.advertising

    def test_enable_requires_data(self):
        hci = HciStack()
        hci.up()
        with pytest.raises(HciError):
            hci.enable_advertising()

    def test_interval_range_enforced(self):
        hci = HciStack()
        hci.up()
        with pytest.raises(HciError):
            hci.set_advertising_parameters(0.001)
        with pytest.raises(HciError):
            hci.set_advertising_parameters(60.0)

    def test_cannot_change_params_while_advertising(self):
        hci = HciStack()
        hci.up()
        hci.set_advertising_parameters(0.1)
        hci.set_advertising_data(packet().encode())
        hci.enable_advertising()
        with pytest.raises(HciError):
            hci.set_advertising_parameters(0.2)

    def test_payload_size_limit(self):
        hci = HciStack()
        hci.up()
        with pytest.raises(HciError):
            hci.set_advertising_data(b"\x00" * 32)

    def test_empty_payload_rejected(self):
        hci = HciStack()
        hci.up()
        with pytest.raises(HciError):
            hci.set_advertising_data(b"")

    def test_down_stops_advertising(self):
        hci = HciStack()
        hci.up()
        hci.set_advertising_data(packet().encode())
        hci.enable_advertising()
        hci.down()
        assert not hci.advertising
        assert not hci.powered


class TestBeaconNode:
    def make_node(self):
        return BeaconNode("pi-1", Point(1.0, 1.0), "kitchen")

    def test_program_starts_advertising(self):
        node = self.make_node()
        node.program(packet())
        assert node.is_advertising
        assert node.packet == packet()

    def test_packet_read_back_from_register(self):
        """The reported packet is decoded from the HCI bytes."""
        node = self.make_node()
        node.program(packet(tx_power=-65))
        assert node.packet.tx_power == -65

    def test_reprogram_tx_power_keeps_identity(self):
        node = self.make_node()
        node.program(packet())
        node.reprogram_tx_power(-70)
        assert node.packet.tx_power == -70
        assert node.packet.identity == packet().identity
        assert node.is_advertising

    def test_reprogram_before_program_rejected(self):
        with pytest.raises(HciError):
            self.make_node().reprogram_tx_power(-60)

    def test_placement_carries_radiated_power(self):
        node = BeaconNode("pi", Point(0, 0), "kitchen", radiated_power_dbm=-62.0)
        node.program(packet(tx_power=-59))
        placement = node.placement()
        assert placement.effective_radiated_power_dbm == -62.0
        assert placement.packet.tx_power == -59

    def test_placement_requires_advertising(self):
        node = self.make_node()
        with pytest.raises(HciError):
            node.placement()
        node.program(packet())
        node.shutdown()
        with pytest.raises(HciError):
            node.placement()

    def test_relay_requires_power(self):
        node = self.make_node()
        with pytest.raises(HciError):
            node.enable_relay()
        node.program(packet())
        node.enable_relay()
        assert node.relay_enabled


class TestTxPowerCalibration:
    def run_calibration(self, device, byte_start=-45, radiated=-59.0, seed=4):
        node = BeaconNode(
            "pi-cal", Point(0.0, 0.0), "calibration_rig",
            radiated_power_dbm=radiated,
        )
        node.program(packet(tx_power=byte_start))
        return node, calibrate_tx_power(node, device=device, seed=seed)

    def test_converges_near_one_meter(self):
        _, result = self.run_calibration("s3_mini")
        assert result.error_m < 0.35

    def test_corrects_a_misprogrammed_byte(self):
        """Byte starts 14 dB off; calibration must pull it toward the
        physical radiated power (modulo channel bias at the rig)."""
        node, result = self.run_calibration("s3_mini")
        assert abs(result.tx_power - (-59)) <= 6
        assert node.packet.tx_power == result.tx_power

    def test_absorbs_device_gain(self):
        """Calibrating with the hotter Nexus 5 lands on a higher byte
        than with the S3 Mini - the Figure 11 cross-device problem."""
        _, s3 = self.run_calibration("s3_mini")
        _, nexus = self.run_calibration("nexus_5")
        assert nexus.tx_power > s3.tx_power

    def test_history_recorded(self):
        _, result = self.run_calibration("s3_mini")
        assert len(result.history) == result.iterations + 1

    def test_node_left_with_final_power(self):
        node, result = self.run_calibration("nexus_5")
        assert node.packet.tx_power == result.tx_power
        assert node.is_advertising
