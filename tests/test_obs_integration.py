"""Integration: telemetry threaded through a full detection run.

One small end-to-end scenario is run twice — once with a recording
registry, once with the default no-op sink — asserting both the
telemetry contract (sim-time-ordered events from every instrumented
subsystem, one scan-cycle span per engine cycle) and behaviour
neutrality (identical detection results either way).
"""

import pytest

from repro.building import Occupant, RandomWaypoint
from repro.building.presets import test_house as make_test_house
from repro.core.config import SystemConfig
from repro.core.system import OccupancyDetectionSystem
from repro.obs import SPAN_END, SPAN_START, MemorySink, MetricsRegistry
from repro.obs.report import summarise

DURATION_S = 60.0


def _run_system(registry):
    plan = make_test_house()
    system = OccupancyDetectionSystem(plan, SystemConfig(seed=7), registry=registry)
    system.calibrate(duration_s=300.0)
    system.train()
    system.add_occupant(
        Occupant("alice", RandomWaypoint(plan, seed=42), device="s3_mini")
    )
    return system.run(DURATION_S)


@pytest.fixture(scope="module")
def instrumented_run():
    registry = MetricsRegistry(sink=MemorySink())
    result = _run_system(registry)
    return registry, result


class TestEventLog:
    def test_covers_every_instrumented_subsystem(self, instrumented_run):
        registry, _ = instrumented_run
        events = registry.events
        assert events
        sources = {e.source for e in events}
        assert {"sim", "phone", "uplink", "server", "energy", "core"} <= sources

    def test_timestamps_are_monotone_sim_time(self, instrumented_run):
        registry, result = instrumented_run
        times = [e.time for e in registry.events]
        assert times == sorted(times)
        assert times[0] >= 0.0
        assert times[-1] <= result.duration_s

    def test_one_scan_cycle_span_per_engine_cycle(self, instrumented_run):
        registry, result = instrumented_run
        n_cycles = int(DURATION_S / SystemConfig().scan_period_s)
        starts = [
            e
            for e in registry.events
            if e.kind == SPAN_START and e.name == "core.scan_cycle"
        ]
        ends = [
            e
            for e in registry.events
            if e.kind == SPAN_END and e.name == "core.scan_cycle"
        ]
        assert len(starts) == len(ends) == n_cycles
        assert all(e.attrs.get("phone") == "alice" for e in starts)

    def test_aggregates_match_run_statistics(self, instrumented_run):
        registry, result = instrumented_run
        stats = result.delivery["alice"]
        assert registry.counter("uplink.reports").value == stats.attempts
        assert registry.counter("uplink.bytes").value == stats.bytes_sent
        n_cycles = int(DURATION_S / SystemConfig().scan_period_s)
        assert registry.counter("phone.scan_cycles").value == n_cycles
        assert registry.counter("server.sightings").value == stats.delivered
        assert registry.counter("energy.joules").value == pytest.approx(
            result.energy["alice"].total_j
        )

    def test_run_exposes_telemetry(self, instrumented_run):
        registry, result = instrumented_run
        assert result.telemetry is registry
        assert result.telemetry.events

    def test_report_renders_real_run(self, instrumented_run):
        registry, _ = instrumented_run
        text = summarise(registry.events, width=40)
        assert "core.scan_cycle" in text
        assert "uplink.reports" in text


class TestBehaviourNeutrality:
    def test_default_null_sink_run_is_byte_identical(self, instrumented_run):
        _, instrumented = instrumented_run
        plain = _run_system(None)
        assert plain.telemetry.events == []

        def comparable(run):
            return repr(
                (
                    run.duration_s,
                    run.accuracy,
                    run.predictions,
                    {
                        k: (v.duration_s, sorted(v.components_j.items()))
                        for k, v in run.energy.items()
                    },
                    {
                        k: (
                            v.attempts,
                            v.delivered,
                            v.failed,
                            v.retries,
                            v.bytes_sent,
                            v.energy_j,
                        )
                        for k, v in run.delivery.items()
                    },
                )
            )

        assert comparable(plain) == comparable(instrumented)


class TestUplinkFailureLegLabels:
    """Both relay legs must report failures under one ``uplink.failed``
    counter, split only by a uniform ``leg`` label (regression: the
    relay leg used to emit a different label set, forking the series).
    """

    @staticmethod
    def _failing_uplink(bt_loss, relay_loss):
        import numpy as np

        from repro.comms.bt_relay import BluetoothRelayUplink
        from repro.phone.app import RangedBeacon, SightingReport
        from repro.server.rest import Router

        router = Router()

        @router.route("POST", "/sightings")
        def post(request, params):
            return {"room": "lab"}

        registry = MetricsRegistry(sink=MemorySink())
        uplink = BluetoothRelayUplink(
            router, rng=np.random.default_rng(0), registry=registry
        )
        uplink.__dict__["LOSS_PROBABILITY"] = bt_loss
        uplink.__dict__["RELAY_LOSS_PROBABILITY"] = relay_loss
        report = SightingReport(
            device_id="alice",
            time=1.0,
            beacons=[RangedBeacon("1-1", -60.0, 2.0, False)],
        )
        uplink.send_report(report)
        return registry

    def test_bt_leg_failure_has_leg_label(self):
        registry = self._failing_uplink(bt_loss=1.0, relay_loss=0.0)
        failed = registry.counter("uplink.failed")
        assert failed.value == 1.0
        assert failed.value_for(
            leg="bt", transport="bt_relay", device="alice"
        ) == 1.0

    def test_relay_leg_failure_has_same_label_set(self):
        registry = self._failing_uplink(bt_loss=0.0, relay_loss=1.0)
        failed = registry.counter("uplink.failed")
        assert failed.value == 1.0
        assert failed.value_for(
            leg="relay", transport="bt_relay", device="alice"
        ) == 1.0

    def test_leg_series_share_one_attribute_schema(self):
        """Every uplink.failed series carries the same attribute keys,
        so the two legs aggregate instead of forking."""
        for kwargs in ({"bt_loss": 1.0, "relay_loss": 0.0},
                       {"bt_loss": 0.0, "relay_loss": 1.0}):
            registry = self._failing_uplink(**kwargs)
            for attr_key in registry.counter("uplink.failed").series:
                assert sorted(k for k, _ in attr_key) == [
                    "device", "leg", "transport",
                ]
