"""Tests for the simulation clock."""

import pytest

from repro.sim.clock import Clock


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now == 0.0

    def test_starts_at_given_time(self):
        assert Clock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_advance_to_moves_forward(self):
        clock = Clock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_to_same_time_is_allowed(self):
        clock = Clock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_to_rejects_backwards(self):
        clock = Clock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.999)

    def test_advance_by_accumulates(self):
        clock = Clock()
        clock.advance_by(1.5)
        clock.advance_by(2.5)
        assert clock.now == 4.0

    def test_advance_by_rejects_negative(self):
        with pytest.raises(ValueError):
            Clock().advance_by(-0.1)

    def test_repr_contains_time(self):
        assert "3.5" in repr(Clock(3.5))
