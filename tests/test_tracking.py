"""Tests for movement tracking, dwell stats and the movement graph."""

import pytest

from repro.tracking.events import RoomTransition
from repro.tracking.graph import (
    build_movement_graph,
    busiest_transitions,
    reachable_rooms,
)
from repro.tracking.stats import compute_dwell_stats
from repro.tracking.tracker import OccupantTracker


def transition(t, device, a, b):
    return RoomTransition(time=t, device_id=device, from_room=a, to_room=b)


class TestRoomTransition:
    def test_same_room_rejected(self):
        with pytest.raises(ValueError):
            transition(0.0, "a", "kitchen", "kitchen")

    def test_str(self):
        text = str(transition(1.5, "alice", "kitchen", "living"))
        assert "alice" in text and "kitchen" in text and "living" in text


class TestOccupantTracker:
    def test_first_fix_is_not_a_transition(self):
        tracker = OccupantTracker(confirm_cycles=1)
        assert tracker.observe(0.0, "a", "kitchen") is None
        assert tracker.current_room("a") == "kitchen"

    def test_single_cycle_confirmation(self):
        tracker = OccupantTracker(confirm_cycles=1)
        tracker.observe(0.0, "a", "kitchen")
        result = tracker.observe(2.0, "a", "living")
        assert result is not None
        assert result.from_room == "kitchen"
        assert result.to_room == "living"

    def test_debounce_suppresses_single_flicker(self):
        tracker = OccupantTracker(confirm_cycles=2)
        tracker.observe(0.0, "a", "kitchen")
        assert tracker.observe(2.0, "a", "living") is None  # flicker
        assert tracker.observe(4.0, "a", "kitchen") is None  # back
        assert tracker.transitions == []
        assert tracker.current_room("a") == "kitchen"

    def test_debounced_transition_confirmed_at_candidate_time(self):
        tracker = OccupantTracker(confirm_cycles=2)
        tracker.observe(0.0, "a", "kitchen")
        tracker.observe(2.0, "a", "living")
        result = tracker.observe(4.0, "a", "living")
        assert result is not None
        assert result.time == 2.0  # when the move actually started

    def test_candidate_switch_resets_count(self):
        tracker = OccupantTracker(confirm_cycles=2)
        tracker.observe(0.0, "a", "kitchen")
        tracker.observe(2.0, "a", "living")
        tracker.observe(4.0, "a", "bedroom")  # different candidate
        assert tracker.observe(6.0, "a", "bedroom") is not None

    def test_devices_tracked_independently(self):
        tracker = OccupantTracker(confirm_cycles=1)
        tracker.observe(0.0, "a", "kitchen")
        tracker.observe(0.0, "b", "living")
        tracker.observe(2.0, "a", "living")
        assert tracker.current_room("a") == "living"
        assert tracker.current_room("b") == "living"
        assert len(tracker.journey("a")) == 1
        assert tracker.journey("b") == []

    def test_unknown_device_room_is_none(self):
        assert OccupantTracker().current_room("ghost") is None

    def test_rejects_bad_confirm_cycles(self):
        with pytest.raises(ValueError):
            OccupantTracker(confirm_cycles=0)

    def test_from_predictions(self):
        predictions = {
            "a": [(2.0, "kitchen", "kitchen"), (4.0, "living", "living"),
                  (6.0, "living", "living")],
        }
        tracker = OccupantTracker.from_predictions(predictions, confirm_cycles=2)
        assert len(tracker.transitions) == 1
        truth_tracker = OccupantTracker.from_predictions(
            predictions, confirm_cycles=1, use_truth=True
        )
        assert len(truth_tracker.transitions) == 1


class TestDwellStats:
    def test_total_time_per_room(self):
        series = [(0.0, "kitchen"), (10.0, "kitchen"), (20.0, "living"),
                  (35.0, "living")]
        stats = compute_dwell_stats("a", series)
        assert stats.total_time_s["kitchen"] == pytest.approx(20.0)
        assert stats.total_time_s["living"] == pytest.approx(15.0)

    def test_visit_counting(self):
        series = [(0.0, "k"), (5.0, "l"), (10.0, "k"), (15.0, "k")]
        stats = compute_dwell_stats("a", series)
        assert stats.visits == {"k": 2, "l": 1}

    def test_mean_dwell(self):
        series = [(0.0, "k"), (10.0, "l"), (20.0, "k"), (30.0, "k")]
        stats = compute_dwell_stats("a", series)
        # k stays: 0-10 and 20-30 (open end contributes 10 via sample
        # spacing): total 20 over 2 visits.
        assert stats.mean_dwell_s("k") == pytest.approx(10.0)
        assert stats.mean_dwell_s("never") == 0.0

    def test_most_occupied(self):
        series = [(0.0, "k"), (30.0, "l"), (35.0, "l")]
        assert compute_dwell_stats("a", series).most_occupied() == "k"

    def test_most_occupied_empty_raises(self):
        with pytest.raises(ValueError):
            compute_dwell_stats("a", []).most_occupied()

    def test_occupancy_fraction(self):
        series = [(0.0, "k"), (30.0, "l"), (40.0, "l")]
        stats = compute_dwell_stats("a", series)
        assert stats.occupancy_fraction("k") == pytest.approx(0.75)

    def test_unordered_series_rejected(self):
        with pytest.raises(ValueError):
            compute_dwell_stats("a", [(5.0, "k"), (1.0, "l")])


class TestMovementGraph:
    def transitions(self):
        return [
            transition(1.0, "a", "kitchen", "living"),
            transition(2.0, "b", "kitchen", "living"),
            transition(3.0, "a", "living", "bedroom"),
            transition(4.0, "b", "living", "kitchen"),
        ]

    def test_edge_counts(self):
        graph = build_movement_graph(self.transitions())
        assert graph["kitchen"]["living"]["count"] == 2
        assert graph["living"]["bedroom"]["count"] == 1

    def test_edge_devices(self):
        graph = build_movement_graph(self.transitions())
        assert graph["kitchen"]["living"]["devices"] == {"a", "b"}

    def test_busiest_transitions(self):
        graph = build_movement_graph(self.transitions())
        top = busiest_transitions(graph, top=1)
        assert top == [("kitchen", "living", 2)]

    def test_busiest_rejects_bad_top(self):
        with pytest.raises(ValueError):
            busiest_transitions(build_movement_graph([]), top=0)

    def test_reachable_rooms(self):
        """Descendants of the start room (start itself excluded)."""
        graph = build_movement_graph(self.transitions())
        assert reachable_rooms(graph, "kitchen") == ["bedroom", "living"]
        assert reachable_rooms(graph, "bedroom") == []

    def test_reachable_unknown_room(self):
        with pytest.raises(KeyError):
            reachable_rooms(build_movement_graph([]), "atlantis")
