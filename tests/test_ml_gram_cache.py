"""Tests for the shared-Gram training fast path.

The entire contract of :mod:`repro.ml.gram_cache` is *byte*-identity:
models fitted through the cached/sliced/vectorised fast path must
equal models fitted through the legacy compute-per-fit path bit for
bit — same alphas, same intercepts, same support indices — on every
kernel and every dataset.  The property tests here pin exactly that,
alongside unit tests of the cache mechanics (keying, LRU eviction,
read-only handouts, hit/miss accounting).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import gram_cache
from repro.ml.gram_cache import GramCache, training_fast_path_disabled
from repro.ml.kernels import (
    LinearKernel,
    PolynomialKernel,
    RbfKernel,
    stable_dot,
)
from repro.ml.model_selection import GridSearch, cross_val_score
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.svm import BinarySVM, SupportVectorClassifier

KERNELS = [
    RbfKernel(gamma=0.05),
    LinearKernel(),
    PolynomialKernel(degree=2, gamma=0.1, coef0=1.0),
]


def _clusters(seed, n_classes, n_per, d):
    """Small labelled blobs: separated enough for SMO to terminate."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-4.0, 4.0, size=(n_classes, d))
    X = np.concatenate(
        [c + rng.normal(scale=1.2, size=(n_per, d)) for c in centers]
    )
    y = np.repeat(np.arange(n_classes), n_per)
    return X, y


def _binary_state(machine):
    return (
        machine.dual_coef_.tobytes(),
        machine.intercept_,
        machine.support_indices_.tobytes(),
    )


def _svc_state(svc):
    return {
        pair: _binary_state(machine)
        for pair, machine in svc._machines.items()
    }


def _ovr_state(ovr):
    return {
        cls: _binary_state(machine)
        for cls, machine in ovr._machines.items()
    }


class TestSliceStability:
    def test_stable_dot_submatrix_is_bitwise_slice(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 7))
        rows = np.array([3, 8, 11, 17, 29, 33])
        full = stable_dot(X, X)
        assert np.array_equal(
            full[np.ix_(rows, rows)], stable_dot(X[rows], X[rows])
        )

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: type(k).__name__)
    def test_kernel_grams_are_slice_stable(self, kernel):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(30, 5))
        rows = np.array([0, 4, 9, 12, 25, 28])
        full = kernel(X, X)
        assert np.array_equal(full[np.ix_(rows, rows)], kernel(X[rows], X[rows]))


class TestGramCacheMechanics:
    def test_full_caches_by_kernel_and_content(self):
        cache = GramCache()
        rng = np.random.default_rng(2)
        X = rng.normal(size=(12, 3))
        kernel = RbfKernel(gamma=0.2)
        first = cache.full(kernel, X)
        again = cache.full(kernel, X.copy())  # equal content, new object
        assert again is first
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "entries": 1,
            "extends": 0,
        }
        # An equal-parameter kernel instance shares the entry too.
        assert cache.full(RbfKernel(gamma=0.2), X) is first
        # A different kernel or dataset misses.
        cache.full(RbfKernel(gamma=0.3), X)
        cache.full(kernel, X + 1.0)
        assert cache.stats()["misses"] == 3

    def test_full_result_is_read_only_and_correct(self):
        cache = GramCache()
        rng = np.random.default_rng(3)
        X = rng.normal(size=(9, 4))
        kernel = LinearKernel()
        gram = cache.full(kernel, X)
        assert np.array_equal(gram, kernel(X, X))
        assert not gram.flags.writeable
        with pytest.raises(ValueError):
            gram[0, 0] = 0.0

    def test_sliced_equals_direct_submatrix(self):
        cache = GramCache()
        rng = np.random.default_rng(4)
        X = rng.normal(size=(20, 6))
        rows = np.array([1, 5, 7, 13, 19])
        for kernel in KERNELS:
            sub = cache.sliced(kernel, X, rows)
            assert np.array_equal(sub, kernel(X[rows], X[rows]))
            assert not sub.flags.writeable
            # The second request reuses the gathered block.
            hits = cache.hits
            assert cache.sliced(kernel, X, rows) is sub
            assert cache.hits == hits + 1

    def test_lru_eviction(self):
        cache = GramCache(max_entries=2)
        kernel = LinearKernel()
        rng = np.random.default_rng(5)
        matrices = [rng.normal(size=(6, 2)) for _ in range(3)]
        grams = [cache.full(kernel, X) for X in matrices]
        assert len(cache) == 2
        # The oldest entry was evicted: refetching it recomputes.
        assert cache.full(kernel, matrices[0]) is not grams[0]
        # The newest survived.
        assert cache.full(kernel, matrices[2]) is grams[2]

    def test_clear_resets_everything(self):
        cache = GramCache()
        cache.full(LinearKernel(), np.eye(4))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "entries": 0,
            "extends": 0,
        }

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            GramCache(max_entries=0)

    def test_fast_path_toggle(self):
        assert gram_cache.fast_path_enabled()
        with training_fast_path_disabled():
            assert not gram_cache.fast_path_enabled()
            with training_fast_path_disabled():
                assert not gram_cache.fast_path_enabled()
            assert not gram_cache.fast_path_enabled()
        assert gram_cache.fast_path_enabled()

    def test_shared_kernel_protocol(self):
        kernel = RbfKernel(gamma=0.7)
        svc = SupportVectorClassifier(kernel=kernel)
        assert gram_cache.shared_kernel(svc) == kernel
        assert gram_cache.shared_kernel(object()) is None


class TestByteIdentity:
    """Fast path vs legacy path: same bits, every estimator."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        kernel=st.sampled_from(KERNELS),
        n_classes=st.integers(2, 4),
    )
    def test_ovo_fit_identical(self, seed, kernel, n_classes):
        X, y = _clusters(seed, n_classes, n_per=12, d=3)

        def build():
            return SupportVectorClassifier(c=1.5, kernel=kernel, seed=0)

        gram_cache.default_cache().clear()
        fast = build().fit(X, y)
        with training_fast_path_disabled():
            legacy = build().fit(X, y)
        assert _svc_state(fast) == _svc_state(legacy)
        # Scores agree too (the shared-bank predict path).
        assert fast.score(X, y) == legacy.score(X, y)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000), kernel=st.sampled_from(KERNELS))
    def test_ovr_fit_identical(self, seed, kernel):
        X, y = _clusters(seed, n_classes=3, n_per=10, d=3)

        def build():
            return OneVsRestClassifier(
                lambda: BinarySVM(c=2.0, kernel=kernel, seed=0)
            )

        gram_cache.default_cache().clear()
        fast = build().fit(X, y)
        with training_fast_path_disabled():
            legacy = build().fit(X, y)
        assert _ovr_state(fast) == _ovr_state(legacy)
        assert np.array_equal(fast.predict(X), legacy.predict(X))

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000), kernel=st.sampled_from(KERNELS))
    def test_cross_val_identical(self, seed, kernel):
        X, y = _clusters(seed, n_classes=3, n_per=12, d=3)
        estimator = SupportVectorClassifier(c=1.0, kernel=kernel, seed=0)
        gram_cache.default_cache().clear()
        fast = cross_val_score(estimator, X, y, n_splits=3, seed=1)
        with training_fast_path_disabled():
            legacy = cross_val_score(estimator, X, y, n_splits=3, seed=1)
        assert np.array_equal(fast, legacy)

    def test_grid_search_identical_and_n_jobs_invariant(self):
        X, y = _clusters(7, n_classes=3, n_per=14, d=3)

        def run(n_jobs):
            grid = GridSearch(
                _svc_factory,
                {"c": [0.5, 2.0], "gamma": [0.05, 0.2]},
                n_splits=3,
                seed=0,
                n_jobs=n_jobs,
            )
            return grid.fit(X, y)

        gram_cache.default_cache().clear()
        fast = run(1)
        with training_fast_path_disabled():
            legacy = run(1)
        assert fast.results_ == legacy.results_
        assert fast.best_params_ == legacy.best_params_
        assert fast.best_score_ == legacy.best_score_
        # PR 4's process-pool path agrees bit for bit as well.
        pooled = run(2)
        assert pooled.results_ == fast.results_
        assert pooled.best_params_ == fast.best_params_

    def test_grid_search_shares_one_gram_across_candidates(self):
        X, y = _clusters(11, n_classes=3, n_per=10, d=3)
        cache = gram_cache.default_cache()
        cache.clear()
        GridSearch(
            _svc_factory,
            {"c": [0.5, 1.0, 2.0, 4.0], "gamma": [0.1]},
            n_splits=3,
            seed=0,
        ).fit(X, y)
        # One full-Gram miss for the dataset (all candidates share the
        # kernel); everything else comes back from the cache.
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] > 0

    def test_sliced_bank_gram_scoring_matches(self):
        X, y = _clusters(13, n_classes=3, n_per=12, d=3)
        svc = SupportVectorClassifier(
            c=1.0, kernel=RbfKernel(gamma=0.1), seed=0
        )
        svc.fit(X, y)
        rng = np.random.default_rng(0)
        test_idx = rng.choice(X.shape[0], size=10, replace=False)
        full = RbfKernel(gamma=0.1)(X, X)
        bank_gram = full[np.ix_(svc.sv_bank_indices_, test_idx)]
        direct = svc.predict(X[test_idx])
        sliced = svc.predict(X[test_idx], bank_gram=bank_gram)
        assert np.array_equal(direct, sliced)


def _svc_factory(params):
    """Module-level grid-search factory (picklable for n_jobs > 1)."""
    return SupportVectorClassifier(
        c=params["c"], kernel=RbfKernel(gamma=params["gamma"]), seed=0
    )
