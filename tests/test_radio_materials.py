"""Tests for wall material attenuation."""

import pytest

from repro.radio.materials import WALL_MATERIALS, Material, wall_loss_db


class TestMaterials:
    def test_known_materials_present(self):
        for name in ("drywall", "glass", "brick", "concrete", "metal", "open"):
            assert name in WALL_MATERIALS

    def test_open_is_lossless(self):
        assert WALL_MATERIALS["open"].loss_db == 0.0

    def test_concrete_lossier_than_drywall(self):
        assert WALL_MATERIALS["concrete"].loss_db > WALL_MATERIALS["drywall"].loss_db

    def test_material_rejects_negative_loss(self):
        with pytest.raises(ValueError):
            Material("weird", -1.0)


class TestWallLoss:
    def test_empty_path_is_zero(self):
        assert wall_loss_db([]) == 0.0

    def test_single_wall(self):
        assert wall_loss_db(["drywall"]) == WALL_MATERIALS["drywall"].loss_db

    def test_losses_add(self):
        assert wall_loss_db(["drywall", "brick"]) == pytest.approx(
            WALL_MATERIALS["drywall"].loss_db + WALL_MATERIALS["brick"].loss_db
        )

    def test_duplicate_walls_count_twice(self):
        assert wall_loss_db(["drywall", "drywall"]) == pytest.approx(
            2.0 * WALL_MATERIALS["drywall"].loss_db
        )

    def test_unknown_material_raises(self):
        with pytest.raises(KeyError):
            wall_loss_db(["adamantium"])
