"""Tests for the perf-regression gate (repro.obs.bench)."""

import json
from pathlib import Path

import pytest

from repro.obs.bench import (
    BenchPoint,
    check,
    latest,
    load_baseline,
    load_results,
    main,
    normalise,
    parse_value,
    update_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def history(*sessions):
    return [{"results": list(rows)} for rows in sessions]


def row(test, label, measured, **extra):
    return {
        "test": test,
        "title": "t",
        "label": label,
        "paper": "-",
        "measured": measured,
        "passed": True,
        **extra,
    }


class TestParseValue:
    @pytest.mark.parametrize(
        "measured, expected",
        [
            ("3.68x", 3.68),
            ("14.2%", 14.2),
            ("std 0.83 m", 0.83),
            ("-5 dBm", -5.0),
            ("1e-3 s", 1e-3),
        ],
    )
    def test_leading_float(self, measured, expected):
        assert parse_value(measured) == pytest.approx(expected)

    def test_textual_cell_yields_none(self):
        assert parse_value("yes") is None


class TestNormalise:
    def test_flattens_rows_into_points(self):
        points = normalise(history([row("a.py::t", "speedup", "2.0x")]))
        assert points == [BenchPoint("a.py::t", "speedup", 2.0, 0)]
        assert points[0].key == "a.py::t::speedup"

    def test_explicit_run_id_wins_over_position(self):
        entry = {"run_id": 7, "results": [row("a.py::t", "s", "1.0")]}
        assert normalise([entry])[0].run_id == 7

    def test_textual_rows_drop_out(self):
        points = normalise(history([row("a.py::t", "verdict", "holds")]))
        assert points == []


class TestLatest:
    def test_later_run_wins(self):
        points = normalise(
            history(
                [row("a.py::t", "s", "1.0")],
                [row("a.py::t", "s", "2.0")],
            )
        )
        assert latest(points)["a.py::t::s"].value == 2.0


class TestLoadResults:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "r.json"
        doc = history([row("a.py::t", "s", "1.0")])
        path.write_text(json.dumps(doc))
        assert load_results(path) == doc

    def test_rejects_non_list(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_results(path)

    def test_rejects_malformed_session(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps([{"no_results": []}]))
        with pytest.raises(ValueError):
            load_results(path)

    def test_rejects_malformed_row(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps([{"results": [{"label": "x"}]}]))
        with pytest.raises(ValueError):
            load_results(path)


class TestLoadBaseline:
    def test_rejects_missing_series(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_rejects_bad_direction(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                {"series": {"k": {"value": 1.0, "direction": "sideways"}}}
            )
        )
        with pytest.raises(ValueError):
            load_baseline(path)


class TestCheck:
    def baseline(self, **series):
        return {"tolerance_pct": 50.0, "series": series}

    def test_within_band_passes(self):
        points = normalise(history([row("a.py::t", "s", "6.0x")]))
        baseline = self.baseline(**{"a.py::t::s": {"value": 10.0}})
        assert check(points, baseline) == []

    def test_higher_series_fails_below_floor(self):
        points = normalise(history([row("a.py::t", "s", "4.0x")]))
        baseline = self.baseline(**{"a.py::t::s": {"value": 10.0}})
        violations = check(points, baseline)
        assert len(violations) == 1
        assert "regressed" in violations[0].message

    def test_higher_series_may_rise_freely(self):
        points = normalise(history([row("a.py::t", "s", "99x")]))
        baseline = self.baseline(**{"a.py::t::s": {"value": 10.0}})
        assert check(points, baseline) == []

    def test_lower_series_fails_above_ceiling(self):
        points = normalise(history([row("a.py::t", "ms", "20")]))
        baseline = self.baseline(
            **{"a.py::t::ms": {"value": 10.0, "direction": "lower"}}
        )
        assert len(check(points, baseline)) == 1

    def test_per_series_tolerance_overrides_default(self):
        points = normalise(history([row("a.py::t", "s", "4.0x")]))
        baseline = self.baseline(
            **{"a.py::t::s": {"value": 10.0, "tolerance_pct": 80.0}}
        )
        assert check(points, baseline) == []

    def test_missing_series_is_a_violation(self):
        baseline = self.baseline(**{"gone.py::t::s": {"value": 1.0}})
        violations = check([], baseline)
        assert "missing" in violations[0].message


class TestUpdateBaseline:
    def test_repins_values_preserving_directions(self):
        points = normalise(history([row("a.py::t", "s", "7.0x")]))
        baseline = {
            "tolerance_pct": 50.0,
            "series": {
                "a.py::t::s": {"value": 1.0, "direction": "higher"},
                "gone.py::t::s": {"value": 2.0, "direction": "lower"},
            },
        }
        updated = update_baseline(points, baseline)
        assert updated["series"]["a.py::t::s"]["value"] == 7.0
        assert updated["series"]["a.py::t::s"]["direction"] == "higher"
        assert updated["series"]["gone.py::t::s"]["value"] == 2.0


class TestCli:
    def write_pair(self, tmp_path, measured="9.0x"):
        results = tmp_path / "results.json"
        baseline = tmp_path / "baseline.json"
        results.write_text(
            json.dumps(history([row("a.py::t", "s", measured)]))
        )
        baseline.write_text(
            json.dumps(
                {
                    "tolerance_pct": 50.0,
                    "series": {"a.py::t::s": {"value": 10.0}},
                }
            )
        )
        return results, baseline

    def test_check_passes(self, tmp_path, capsys):
        results, baseline = self.write_pair(tmp_path)
        code = main(
            ["--results", str(results), "--baseline", str(baseline), "--check"]
        )
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        results, baseline = self.write_pair(tmp_path, measured="1.0x")
        code = main(
            ["--results", str(results), "--baseline", str(baseline), "--check"]
        )
        assert code == 1
        assert "regressed" in capsys.readouterr().err

    def test_unreadable_results_exit_2(self, tmp_path, capsys):
        results, baseline = self.write_pair(tmp_path)
        results.write_text("not json")
        code = main(
            ["--results", str(results), "--baseline", str(baseline), "--check"]
        )
        assert code == 2

    def test_update_baseline_rewrites_file(self, tmp_path):
        results, baseline = self.write_pair(tmp_path, measured="42x")
        code = main(
            [
                "--results",
                str(results),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        assert code == 0
        doc = json.loads(baseline.read_text())
        assert doc["series"]["a.py::t::s"]["value"] == 42.0


class TestCommittedBaseline:
    """The checked-in baseline must gate the checked-in history."""

    def test_baseline_loads_and_passes_against_history(self):
        baseline = load_baseline(REPO_ROOT / "benchmarks" / "bench_baseline.json")
        points = normalise(load_results(REPO_ROOT / "BENCH_results.json"))
        assert check(points, baseline) == []

    def test_baseline_covers_the_perf_benchmarks(self):
        baseline = load_baseline(REPO_ROOT / "benchmarks" / "bench_baseline.json")
        files = {key.split("::")[0] for key in baseline["series"]}
        assert files == {
            "benchmarks/test_perf_batch.py",
            "benchmarks/test_perf_columnar.py",
            "benchmarks/test_perf_parallel.py",
            "benchmarks/test_perf_refresh.py",
            "benchmarks/test_perf_sharded_service.py",
            "benchmarks/test_perf_svm_train.py",
            "benchmarks/test_perf_wal_replay.py",
        }
