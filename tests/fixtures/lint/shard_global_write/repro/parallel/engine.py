"""Stub of the shard execution engine (fixture)."""


def run_shards(worker, shards, n_jobs=None):
    return [worker(shard) for shard in shards]
