"""A shard worker that leaks its results into a module global."""

from repro.parallel.engine import run_shards

TOTALS = {}


def _tally(shard):
    TOTALS[shard.index] = shard.size
    return shard.size


def run(shards):
    return run_shards(_tally, shards)
