"""Imports a name `repro.util` does not bind."""

from repro.util import missing

__all__ = ["use"]


def use():
    """Use the unresolvable import."""
    return missing()
