"""Defines one helper; does not define `missing`."""

__all__ = ["present"]


def present():
    """The only name this module exports."""
    return 1
