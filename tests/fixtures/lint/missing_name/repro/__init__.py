"""Fixture tree: an import of a name its module does not define."""
