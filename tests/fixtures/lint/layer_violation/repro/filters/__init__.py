"""A leaf library package (no first-party imports allowed)."""
