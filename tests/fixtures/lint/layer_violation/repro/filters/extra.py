"""A filters module that illegally imports from the server layer."""

from repro.server.store import DATABASE

__all__ = ["peek"]


def peek():
    """Read server state from a leaf library (the violation)."""
    return DATABASE
