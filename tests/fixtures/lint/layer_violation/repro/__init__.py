"""Fixture tree: a leaf library reaching up into the server layer."""
