"""The server package the leaf library must not touch."""
