"""Server-side storage stub."""

__all__ = ["DATABASE"]

DATABASE = {}
