"""Second half of the cycle."""

import repro.alpha

__all__ = ["BETA", "back"]

BETA = 1


def back():
    """Reach back into alpha."""
    return repro.alpha.ALPHA
