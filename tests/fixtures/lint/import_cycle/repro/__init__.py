"""Fixture tree: two sibling modules importing each other."""
