"""First half of the cycle."""

from repro.beta import BETA

__all__ = ["ALPHA"]

ALPHA = BETA + 1
