"""Sums float residuals straight out of a set (fixture)."""


def total_residual(values):
    residuals = {round(v, 6) for v in values}
    return sum(residuals)
