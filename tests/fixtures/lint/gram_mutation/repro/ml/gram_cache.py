"""Stub of the shared Gram cache (fixture)."""


class GramCache:
    def full(self, kernel, X):
        return kernel(X, X)

    def sliced(self, kernel, X, rows):
        return kernel(X, X)


_CACHE = GramCache()


def default_cache():
    return _CACHE
