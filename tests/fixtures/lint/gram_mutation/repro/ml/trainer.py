"""A fit that centres the shared Gram handout in place."""

from repro.ml.gram_cache import default_cache


def fit(kernel, X):
    gram = default_cache().full(kernel, X)
    gram += 1.0
    return gram
