"""Passes a lambda as the pool worker (fixture)."""

from repro.parallel.engine import run_shards


def run(shards):
    return run_shards(lambda shard: shard + 1, shards)
