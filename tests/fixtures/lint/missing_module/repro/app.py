"""Imports a module that is absent from the tree."""

from repro.ghost import haunt

__all__ = ["boo"]


def boo():
    """Use the phantom import."""
    return haunt()
