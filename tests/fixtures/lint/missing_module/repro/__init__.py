"""Fixture tree: an import of a module that does not exist."""
