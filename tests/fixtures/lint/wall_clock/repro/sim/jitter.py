"""Uses the process wall clock where simulated time is required."""

import time

__all__ = ["now"]


def now():
    """Return the wall-clock time (the violation)."""
    return time.time()
