"""Simulation-domain package for the determinism fixture."""
