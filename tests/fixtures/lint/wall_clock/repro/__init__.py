"""Fixture tree: a wall-clock call inside a simulation package."""
