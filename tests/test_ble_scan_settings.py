"""Tests for scan settings."""

import pytest

from repro.ble.scanner_params import ScanSettings


class TestScanSettings:
    def test_defaults_match_paper(self):
        settings = ScanSettings()
        assert settings.scan_period_s == 2.0
        assert settings.duty_cycle == 1.0

    def test_listen_window(self):
        assert ScanSettings(4.0, duty_cycle=0.5).listen_window_s == 2.0

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            ScanSettings(scan_period_s=0.0)

    @pytest.mark.parametrize("duty", [0.0, 1.5, -0.2])
    def test_rejects_bad_duty_cycle(self, duty):
        with pytest.raises(ValueError):
            ScanSettings(duty_cycle=duty)
