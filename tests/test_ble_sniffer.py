"""Tests for raw-payload protocol sniffing."""

import uuid

from hypothesis import given, strategies as st

from repro.ble.sniffer import BeaconFormat, identify_format, sniff
from repro.ibeacon.altbeacon import AltBeaconPacket
from repro.ibeacon.packet import IBeaconPacket

UUID_A = uuid.UUID("f7826da6-4fa2-4e98-8024-bc5b71e0893e")


def ibeacon(major=1, minor=2):
    return IBeaconPacket(uuid=UUID_A, major=major, minor=minor, tx_power=-59)


def altbeacon(major=1, minor=2):
    return AltBeaconPacket(uuid=UUID_A, major=major, minor=minor, tx_power=-59)


class TestIdentify:
    def test_ibeacon_payload(self):
        assert identify_format(ibeacon().encode()) is BeaconFormat.IBEACON

    def test_altbeacon_payload(self):
        assert identify_format(altbeacon().encode()) is BeaconFormat.ALTBEACON

    def test_garbage_is_unknown(self):
        assert identify_format(b"\x00\x01\x02") is BeaconFormat.UNKNOWN

    def test_empty_is_unknown(self):
        assert identify_format(b"") is BeaconFormat.UNKNOWN


class TestSniff:
    def test_ibeacon_decoded(self):
        result = sniff(ibeacon(major=7).encode())
        assert result.format is BeaconFormat.IBEACON
        assert result.packet.major == 7
        assert result.identity == (UUID_A, 7, 2)

    def test_altbeacon_decoded(self):
        result = sniff(altbeacon(minor=9).encode())
        assert result.format is BeaconFormat.ALTBEACON
        assert result.identity == (UUID_A, 1, 9)

    def test_identity_is_format_independent(self):
        assert sniff(ibeacon().encode()).identity == sniff(
            altbeacon().encode()
        ).identity

    def test_truncated_ibeacon_degrades_to_unknown(self):
        payload = ibeacon().encode()[:20]
        result = sniff(payload)
        assert result.format is BeaconFormat.UNKNOWN
        assert result.packet is None
        assert result.identity is None

    def test_unknown_payload(self):
        result = sniff(b"\xde\xad\xbe\xef")
        assert result.format is BeaconFormat.UNKNOWN

    @given(noise=st.binary(min_size=0, max_size=40))
    def test_never_raises_on_arbitrary_bytes(self, noise):
        result = sniff(noise)
        assert isinstance(result.format, BeaconFormat)

    @given(
        major=st.integers(0, 0xFFFF),
        minor=st.integers(0, 0xFFFF),
    )
    def test_sniff_roundtrip_ibeacon(self, major, minor):
        packet = ibeacon(major=major, minor=minor)
        result = sniff(packet.encode())
        assert result.packet == packet
