"""Tests for the Smartphone bundle and DetectionRun API."""

import pytest

from repro.ble.air import AirInterface
from repro.building.geometry import Point
from repro.building.mobility import StaticPosition
from repro.building.occupant import Occupant
from repro.building.presets import BUILDING_UUID, single_room
from repro.ibeacon.region import BeaconRegion
from repro.phone.device import Smartphone
from repro.sim.rng import RngStreams


def make_phone(platform="android", name="alice"):
    plan = single_room()
    air = AirInterface(plan)
    region = BeaconRegion("building", BUILDING_UUID)
    occupant = Occupant(name, StaticPosition(Point(2.5, 4.0)))
    return Smartphone(occupant, air, region, platform=platform,
                      streams=RngStreams(3))


class TestSmartphone:
    def test_device_id_is_occupant_name(self):
        assert make_phone(name="zoe").device_id == "zoe"

    def test_rejects_unknown_platform(self):
        plan = single_room()
        air = AirInterface(plan)
        occupant = Occupant("a", StaticPosition(Point(1, 1)))
        with pytest.raises(ValueError):
            Smartphone(occupant, air, BeaconRegion("b", BUILDING_UUID),
                       platform="symbian")

    def test_boot_then_cycle(self):
        phone = make_phone()
        phone.boot()
        report = phone.run_cycle(0.0)
        assert report is not None
        assert report.device_id == "alice"

    def test_ios_platform_uses_ios_scanner(self):
        from repro.phone.scanner import IosScanner

        phone = make_phone(platform="ios")
        assert isinstance(phone.scanner, IosScanner)

    def test_different_occupants_get_independent_rng(self):
        a = make_phone(name="a")
        b = make_phone(name="b")
        a.boot()
        b.boot()
        report_a = a.run_cycle(0.0)
        report_b = b.run_cycle(0.0)
        # Same position, same plan - but independent channel draws.
        assert report_a.beacons[0].rssi != report_b.beacons[0].rssi

    def test_same_occupant_is_reproducible(self):
        a = make_phone(name="same")
        b = make_phone(name="same")
        a.boot()
        b.boot()
        assert a.run_cycle(0.0).beacons[0].rssi == b.run_cycle(0.0).beacons[0].rssi


class TestDetectionRunApi:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.building.presets import two_room_corridor
        from repro.core.config import SystemConfig
        from repro.core.system import OccupancyDetectionSystem

        plan = two_room_corridor()
        system = OccupancyDetectionSystem(plan, SystemConfig(seed=9))
        system.calibrate(duration_s=400.0)
        system.train()
        system.add_occupant(
            Occupant("bob", StaticPosition(Point(2.0, 1.5)))
        )
        return system.run(60.0)

    def test_average_power(self, run):
        assert run.average_power_w("bob") > 0.1

    def test_battery_life_projection(self, run):
        life = run.battery_life_hours("bob", battery_wh=5.7)
        assert 5.0 < life < 20.0

    def test_battery_life_scales_with_capacity(self, run):
        small = run.battery_life_hours("bob", battery_wh=2.0)
        large = run.battery_life_hours("bob", battery_wh=8.0)
        assert large == pytest.approx(4.0 * small)

    def test_unknown_device_raises(self, run):
        with pytest.raises(KeyError):
            run.average_power_w("ghost")
