"""Tests for calibration dataset construction."""

import pytest

from repro.building.presets import test_house as make_test_house
from repro.core.calibration import dataset_from_trace, run_calibration
from repro.traces.schema import BeaconTrace, TraceMeta, TraceRecord


def labelled_trace():
    trace = BeaconTrace(
        meta=TraceMeta(scenario="t", device="d", scan_period_s=2.0, seed=0)
    )
    trace.append(
        TraceRecord(
            time=2.0, device_id="d",
            rssi={"1-1": -60.0}, distance={"1-1": 2.0}, true_room="kitchen",
        )
    )
    trace.append(
        TraceRecord(
            time=4.0, device_id="d",
            rssi={"1-2": -70.0}, distance={"1-2": 5.0}, true_room="living",
        )
    )
    return trace


class TestDatasetFromTrace:
    def test_distance_features_default(self):
        data = dataset_from_trace(labelled_trace())
        assert data.fingerprints[0] == {"1-1": 2.0}
        assert data.labels == ["kitchen", "living"]

    def test_rssi_features(self):
        data = dataset_from_trace(labelled_trace(), feature="rssi")
        assert data.fingerprints[0] == {"1-1": -60.0}

    def test_rejects_unknown_feature(self):
        with pytest.raises(ValueError):
            dataset_from_trace(labelled_trace(), feature="barometer")

    def test_rejects_unlabelled_records(self):
        trace = BeaconTrace(
            meta=TraceMeta(scenario="t", device="d", scan_period_s=2.0, seed=0)
        )
        trace.append(
            TraceRecord(time=2.0, device_id="d", rssi={"a": -60.0},
                        distance={"a": 2.0}, true_room=None)
        )
        with pytest.raises(ValueError):
            dataset_from_trace(trace)

    def test_empty_inside_cycles_skipped(self):
        trace = labelled_trace()
        trace.append(
            TraceRecord(time=6.0, device_id="d", rssi={}, distance={},
                        true_room="kitchen")
        )
        data = dataset_from_trace(trace)
        assert len(data) == 2


class TestRunCalibration:
    def test_survey_covers_every_room(self):
        plan = make_test_house()
        data = run_calibration(plan, duration_s=400.0, seed=1)
        assert set(data.classes) >= set(plan.room_names)

    def test_outside_class_included_by_default(self):
        plan = make_test_house()
        data = run_calibration(plan, duration_s=400.0, seed=1)
        assert "outside" in data.classes

    def test_outside_can_be_excluded(self):
        plan = make_test_house()
        data = run_calibration(
            plan, duration_s=400.0, seed=1, include_outside=False
        )
        assert "outside" not in data.classes

    def test_walk_mode_supported(self):
        plan = make_test_house()
        data = run_calibration(
            plan, duration_s=120.0, seed=1, mode="walk", include_outside=False
        )
        assert len(data) > 0

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            run_calibration(make_test_house(), mode="teleport")

    def test_deterministic(self):
        plan = make_test_house()
        a = run_calibration(plan, duration_s=300.0, seed=2)
        b = run_calibration(plan, duration_s=300.0, seed=2)
        assert a.fingerprints == b.fingerprints
        assert a.labels == b.labels
