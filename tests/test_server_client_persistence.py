"""Tests for the BMS API client and calibration persistence."""

import pytest

from repro.server.bms import BuildingManagementServer
from repro.server.client import BmsApiError, BmsClient
from repro.server.persistence import load_calibration, save_calibration


def fresh_bms():
    return BuildingManagementServer(["1-1", "1-2"])


def seeded_client():
    bms = fresh_bms()
    client = BmsClient(bms.router)
    for i in range(8):
        client.post_fingerprint("kitchen", {"1-1": 1.0 + 0.1 * i, "1-2": 8.0}, i)
        client.post_fingerprint("living", {"1-1": 8.0, "1-2": 1.0 + 0.1 * i}, i)
    return bms, client


class TestBmsClient:
    def test_fingerprint_and_train_roundtrip(self):
        bms, client = seeded_client()
        accuracy = client.train()
        assert accuracy > 0.9
        assert bms.trained

    def test_sighting_returns_room(self):
        _, client = seeded_client()
        client.train()
        room = client.post_sighting("alice", {"1-1": 1.2, "1-2": 8.0}, 5.0)
        assert room == "kitchen"

    def test_occupancy_queries(self):
        bms, client = seeded_client()
        client.train()
        client.post_sighting("alice", {"1-1": 1.2, "1-2": 8.0}, 5.0)
        assert client.occupancy(time=5.0) == {"kitchen": 1}
        assert client.room_count("kitchen", time=5.0) == 1
        assert client.room_count("living", time=5.0) == 0
        assert client.device_location("alice") == "kitchen"

    def test_history_after_recording(self):
        bms, client = seeded_client()
        client.train()
        client.post_sighting("alice", {"1-1": 1.2, "1-2": 8.0}, 5.0)
        bms.record_history(5.0)
        bms.record_history(15.0)
        history = client.room_history("kitchen")
        assert history["peak"] == 1

    def test_errors_raise_typed_exception(self):
        _, client = seeded_client()
        with pytest.raises(BmsApiError) as excinfo:
            client.device_location("ghost")
        assert excinfo.value.status == 404

    def test_train_without_data_conflicts(self):
        client = BmsClient(fresh_bms().router)
        with pytest.raises(BmsApiError) as excinfo:
            client.train()
        assert excinfo.value.status == 409

    def test_validation_error_maps_to_400(self):
        client = BmsClient(fresh_bms().router)
        with pytest.raises(BmsApiError) as excinfo:
            client.post_fingerprint("", {}, 0.0)
        assert excinfo.value.status == 400


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        bms, client = seeded_client()
        path = tmp_path / "calibration.json"
        saved = save_calibration(bms, path)
        assert saved == 16

        restored = fresh_bms()
        loaded = load_calibration(restored, path)
        assert loaded == 16
        assert restored.trained
        assert restored.classify({"1-1": 1.2, "1-2": 8.0}) == "kitchen"

    def test_load_without_training(self, tmp_path):
        bms, _ = seeded_client()
        path = tmp_path / "calibration.json"
        save_calibration(bms, path)
        restored = fresh_bms()
        load_calibration(restored, path, train=False)
        assert not restored.trained
        assert len(restored.fingerprints) == 16

    def test_beacon_mismatch_rejected(self, tmp_path):
        bms, _ = seeded_client()
        path = tmp_path / "calibration.json"
        save_calibration(bms, path)
        other = BuildingManagementServer(["9-9"])
        with pytest.raises(ValueError):
            load_calibration(other, path)

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99}')
        with pytest.raises(ValueError):
            load_calibration(fresh_bms(), path)

    def test_empty_store_roundtrip(self, tmp_path):
        bms = fresh_bms()
        path = tmp_path / "empty.json"
        assert save_calibration(bms, path) == 0
        assert load_calibration(fresh_bms(), path) == 0


class TestShardedPersistence:
    """Calibration round trips through the sharded broadcast: one file
    restores K identical shard models."""

    def make_service(self, shards):
        from repro.server.sharded import ShardedBmsService

        return ShardedBmsService(
            ["1-1", "1-2"], shards=shards, drain_policy="immediate"
        )

    def seed(self, service):
        for i in range(8):
            service.add_fingerprint(
                "kitchen", {"1-1": 1.0 + 0.1 * i, "1-2": 8.0}, float(i)
            )
            service.add_fingerprint(
                "living", {"1-1": 8.0, "1-2": 1.0 + 0.1 * i}, float(i)
            )
        service.train()

    def test_single_store_save_restores_to_sharded(self, tmp_path):
        bms, _ = seeded_client()
        bms.train()
        path = tmp_path / "calibration.json"
        save_calibration(bms, path)

        service = self.make_service(3)
        assert load_calibration(service, path) == 16
        assert service.trained
        probes = [
            {"1-1": 1.2, "1-2": 8.0},
            {"1-1": 8.0, "1-2": 1.3},
            {"1-1": 1.0, "1-2": 7.5},
        ]
        # Broadcast restore: every shard answers like the source store.
        assert service.classify_batch(probes) == bms.classify_batch(probes)
        for shard in service._shards:
            assert shard.classify_batch(probes) == bms.classify_batch(probes)

    def test_sharded_save_reads_shard_zero(self, tmp_path):
        service = self.make_service(4)
        self.seed(service)
        path = tmp_path / "calibration.json"
        assert save_calibration(service, path) == 16

        restored = self.make_service(2)
        assert load_calibration(restored, path) == 16
        probes = [{"1-1": 1.1, "1-2": 8.0}, {"1-1": 8.0, "1-2": 1.1}]
        assert restored.classify_batch(probes) == service.classify_batch(
            probes
        )

    def test_round_trip_preserves_fingerprint_rows(self, tmp_path):
        service = self.make_service(3)
        self.seed(service)
        path = tmp_path / "calibration.json"
        save_calibration(service, path)
        restored = self.make_service(3)
        load_calibration(restored, path)
        for original, rebuilt in zip(service._shards, restored._shards):
            rows = lambda shard: [
                (row["time"], row["room"], row["beacons"])
                for row in shard.db.table("fingerprints")
            ]
            assert rows(rebuilt) == rows(original)
