"""Tests for feature scaling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.scaling import MinMaxScaler, StandardScaler

matrices = arrays(
    np.float64,
    st.tuples(st.integers(2, 20), st.integers(1, 5)),
    elements=st.floats(-100, 100),
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, (200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_passes_through_centred(self):
        X = np.array([[1.0, 7.0], [2.0, 7.0], [3.0, 7.0]])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 1], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.ones(5))

    @given(X=matrices)
    def test_inverse_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6
        )

    def test_test_data_uses_train_statistics(self):
        train = np.array([[0.0], [10.0]])
        scaler = StandardScaler().fit(train)
        out = scaler.transform(np.array([[20.0]]))
        assert out[0, 0] == pytest.approx((20.0 - 5.0) / 5.0)


class TestMinMaxScaler:
    def test_unit_interval(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-50, 50, (100, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= 0.0
        assert Z.max() <= 1.0

    def test_endpoints_map_to_0_and_1(self):
        X = np.array([[2.0], [4.0], [6.0]])
        Z = MinMaxScaler().fit_transform(X)
        assert Z[0, 0] == 0.0
        assert Z[2, 0] == 1.0

    def test_constant_feature_no_blowup(self):
        X = np.full((4, 1), 3.0)
        Z = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))

    @given(X=matrices)
    def test_inverse_roundtrip(self, X):
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6
        )
