"""Tests for iBeacon region matching semantics."""

import uuid

import pytest

from repro.ibeacon.packet import IBeaconPacket
from repro.ibeacon.region import BeaconRegion, RegionEvent, RegionEventKind

UUID_A = uuid.UUID("f7826da6-4fa2-4e98-8024-bc5b71e0893e")
UUID_B = uuid.UUID("00000000-0000-0000-0000-000000000001")


def packet(major=1, minor=2, u=UUID_A):
    return IBeaconPacket(uuid=u, major=major, minor=minor, tx_power=-59)


class TestRegionMatching:
    def test_uuid_only_region_matches_any_major_minor(self):
        region = BeaconRegion("all", UUID_A)
        assert region.matches(packet(1, 1))
        assert region.matches(packet(9, 700))

    def test_uuid_mismatch_never_matches(self):
        region = BeaconRegion("all", UUID_A)
        assert not region.matches(packet(u=UUID_B))

    def test_major_filter(self):
        region = BeaconRegion("group", UUID_A, major=5)
        assert region.matches(packet(5, 123))
        assert not region.matches(packet(6, 123))

    def test_minor_filter(self):
        region = BeaconRegion("one", UUID_A, major=5, minor=7)
        assert region.matches(packet(5, 7))
        assert not region.matches(packet(5, 8))

    def test_minor_without_major_rejected(self):
        with pytest.raises(ValueError):
            BeaconRegion("bad", UUID_A, minor=3)

    @pytest.mark.parametrize("major", [-1, 65536])
    def test_out_of_range_major_rejected(self, major):
        with pytest.raises(ValueError):
            BeaconRegion("bad", UUID_A, major=major)

    def test_uuid_string_coerced(self):
        region = BeaconRegion("all", str(UUID_A))
        assert region.matches(packet())

    def test_str_mentions_identifier(self):
        assert "lobby" in str(BeaconRegion("lobby", UUID_A))


class TestRegionEvent:
    def test_event_str(self):
        region = BeaconRegion("lobby", UUID_A)
        event = RegionEvent(time=12.5, kind=RegionEventKind.ENTER, region=region)
        text = str(event)
        assert "enter" in text and "lobby" in text

    def test_kinds_are_distinct(self):
        assert RegionEventKind.ENTER is not RegionEventKind.EXIT
