"""Tests for the spatially correlated shadowing field."""

import numpy as np
import pytest

from repro.radio.shadowing import ShadowingField


class TestDeterminism:
    def test_same_position_same_value(self):
        field = ShadowingField(sigma_db=3.0, link_seed=1)
        assert field.sample(2.3, 4.5) == field.sample(2.3, 4.5)

    def test_same_seed_same_field(self):
        a = ShadowingField(sigma_db=3.0, link_seed=9)
        b = ShadowingField(sigma_db=3.0, link_seed=9)
        assert a.sample(1.0, 1.0) == b.sample(1.0, 1.0)

    def test_different_seed_different_field(self):
        a = ShadowingField(sigma_db=3.0, link_seed=1)
        b = ShadowingField(sigma_db=3.0, link_seed=2)
        samples_a = [a.sample(x, 0.0) for x in range(10)]
        samples_b = [b.sample(x, 0.0) for x in range(10)]
        assert samples_a != samples_b


class TestStatistics:
    def test_zero_sigma_is_zero_everywhere(self):
        field = ShadowingField(sigma_db=0.0)
        assert field.sample(3.0, 7.0) == 0.0

    def test_marginal_std_close_to_sigma(self):
        field = ShadowingField(sigma_db=4.0, correlation_distance_m=1.0, link_seed=3)
        rng = np.random.default_rng(0)
        # Sample far apart (decorrelated) positions at cell centres.
        values = [
            field.sample(float(x) + 0.0, float(y) + 0.0)
            for x in range(0, 300, 10)
            for y in range(0, 30, 10)
        ]
        std = np.std(values)
        # Bilinear interpolation shrinks variance somewhat; accept a
        # broad band around sigma.
        assert 1.5 < std < 6.0

    def test_nearby_points_are_similar(self):
        field = ShadowingField(sigma_db=4.0, correlation_distance_m=5.0, link_seed=3)
        base = field.sample(10.0, 10.0)
        near = field.sample(10.3, 10.1)
        far_values = [field.sample(10.0 + 50.0 * k, 10.0 + 35.0 * k) for k in range(1, 8)]
        assert abs(near - base) < 2.0
        # Far samples should spread much more than the near difference.
        assert np.std(far_values) > abs(near - base)


class TestValidation:
    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            ShadowingField(sigma_db=-1.0)

    def test_rejects_nonpositive_correlation(self):
        with pytest.raises(ValueError):
            ShadowingField(correlation_distance_m=0.0)


class TestSampleMany:
    def test_matches_scalar_bitwise(self):
        field = ShadowingField(sigma_db=3.0, link_seed=11)
        fresh = ShadowingField(sigma_db=3.0, link_seed=11)
        xs = np.array([0.1, 5.3, -2.7, 5.3, 100.0])
        ys = np.array([0.2, -1.1, 3.3, -1.1, 42.0])
        vec = field.sample_many(xs, ys)
        for i in range(len(xs)):
            assert vec[i] == fresh.sample(float(xs[i]), float(ys[i]))

    def test_two_dimensional_input(self):
        field = ShadowingField(sigma_db=3.0, link_seed=3)
        fresh = ShadowingField(sigma_db=3.0, link_seed=3)
        xs = np.arange(6.0).reshape(2, 3)
        ys = xs + 0.5
        vec = field.sample_many(xs, ys)
        assert vec.shape == (2, 3)
        for i in range(2):
            for j in range(3):
                assert vec[i, j] == fresh.sample(xs[i, j], ys[i, j])

    def test_zero_sigma_shape(self):
        field = ShadowingField(sigma_db=0.0)
        assert field.sample_many(np.zeros((3, 2)), np.zeros((3, 2))).shape == (3, 2)
