"""Unit tests for the repro.obs telemetry layer."""

import pytest

from repro.obs import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    SPAN_END,
    SPAN_START,
    MemorySink,
    MetricsRegistry,
    NullSink,
    TelemetryEvent,
    read_jsonl,
    render_prometheus,
    render_timeline,
    to_jsonl,
    write_jsonl,
)
from repro.obs.profiling import WallClockProfiler
from repro.obs.report import main as report_main
from repro.obs.report import summarise


def recording_registry(t0=0.0):
    clock = {"t": t0}
    registry = MetricsRegistry(sink=MemorySink(), clock=lambda: clock["t"])
    return registry, clock


class TestCounter:
    def test_accumulates_and_splits_by_attrs(self):
        registry = MetricsRegistry()
        counter = registry.counter("test.hits")
        counter.inc()
        counter.inc(2.0, phone="alice")
        counter.inc(3.0, phone="bob")
        counter.inc(4.0, phone="alice")
        assert counter.value == 10.0
        assert counter.value_for(phone="alice") == 6.0
        assert counter.value_for(phone="bob") == 3.0
        assert counter.value_for(phone="carol") == 0.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("test.hits").inc(-1.0)

    def test_emits_timestamped_events(self):
        registry, clock = recording_registry()
        counter = registry.counter("test.hits")
        counter.inc()
        clock["t"] = 5.0
        counter.inc(2.0, phone="alice")
        events = registry.events
        assert [e.kind for e in events] == [COUNTER, COUNTER]
        assert [e.time for e in events] == [0.0, 5.0]
        assert events[1].value == 2.0
        assert events[1].attrs == {"phone": "alice"}
        assert events[1].source == "test"

    def test_null_sink_emits_nothing_but_still_aggregates(self):
        registry = MetricsRegistry(sink=NullSink())
        registry.counter("test.hits").inc(7.0)
        assert registry.events == []
        assert registry.counter("test.hits").value == 7.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.counter("a.b") is not registry.counter("a.c")


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("test.depth")
        assert gauge.value is None
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_attr_series_tracked_separately(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("test.soc")
        gauge.set(0.9, device="alice")
        gauge.set(0.5, device="bob")
        assert gauge.value_for(device="alice") == 0.9
        assert gauge.value_for(device="bob") == 0.5
        assert gauge.value_for(device="carol") is None

    def test_emits_gauge_events(self):
        registry, _ = recording_registry()
        registry.gauge("test.depth").set(4.0)
        (event,) = registry.events
        assert event.kind == GAUGE
        assert event.value == 4.0


class TestHistogram:
    def test_bucketing_is_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("test.lat", buckets=[1.0, 5.0])
        for v in [0.5, 0.7, 3.0, 100.0]:
            hist.observe(v)
        assert hist.count == 4
        assert hist.sum == pytest.approx(104.2)
        assert hist.mean == pytest.approx(104.2 / 4)
        assert hist.bucket_counts() == {"1": 2, "5": 3, "+Inf": 4}

    def test_boundary_lands_in_lower_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("test.lat", buckets=[1.0, 5.0])
        hist.observe(1.0)
        assert hist.bucket_counts()["1"] == 1

    def test_invalid_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("test.bad", buckets=[])
        with pytest.raises(ValueError):
            registry.histogram("test.bad2", buckets=[2.0, 1.0])

    def test_emits_histogram_events(self):
        registry, _ = recording_registry()
        registry.histogram("test.lat", buckets=[1.0]).observe(0.3)
        (event,) = registry.events
        assert event.kind == HISTOGRAM
        assert event.value == 0.3


class TestSpans:
    def test_nesting_records_parents_and_durations(self):
        registry, clock = recording_registry()
        tracer = registry.tracer
        with tracer.span("outer.op", phone="alice") as outer:
            clock["t"] = 1.0
            with tracer.span("inner.op") as inner:
                clock["t"] = 3.0
            assert tracer.depth == 1
        assert tracer.depth == 0
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.duration == 2.0
        assert outer.duration == 3.0
        kinds = [e.kind for e in registry.events]
        assert kinds == [SPAN_START, SPAN_START, SPAN_END, SPAN_END]
        end_inner = registry.events[2]
        assert end_inner.name == "inner.op"
        assert end_inner.value == 2.0
        assert end_inner.attrs["parent_id"] == outer.span_id

    def test_out_of_order_close_raises(self):
        registry, _ = recording_registry()
        tracer = registry.tracer
        a = tracer.span("a.x")
        b = tracer.span("b.x")
        a.__enter__()
        b.__enter__()
        with pytest.raises(RuntimeError):
            a.__exit__(None, None, None)

    def test_empty_span_name_rejected(self):
        registry, _ = recording_registry()
        with pytest.raises(ValueError):
            registry.tracer.span("")

    def test_null_sink_spans_are_silent(self):
        registry = MetricsRegistry()
        with registry.tracer.span("quiet.op"):
            pass
        assert registry.events == []


class TestEventModel:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TelemetryEvent(time=0.0, kind="bogus", name="x", value=1.0)

    def test_dict_round_trip(self):
        event = TelemetryEvent(
            time=1.5, kind=COUNTER, name="a.b", value=2.0, attrs={"k": "v"}
        )
        assert TelemetryEvent.from_dict(event.to_dict()) == event


class TestExporters:
    def _sample_events(self):
        registry, clock = recording_registry()
        registry.counter("phone.scans").inc(3.0, phone="alice")
        clock["t"] = 2.0
        registry.gauge("sim.queue_depth").set(5.0)
        with registry.tracer.span("core.cycle"):
            clock["t"] = 4.0
        registry.histogram("server.lat", buckets=[1.0]).observe(0.5)
        return registry

    def test_jsonl_round_trip_in_memory(self):
        registry = self._sample_events()
        events = registry.events
        assert read_jsonl(to_jsonl(events).splitlines()) == events

    def test_jsonl_round_trip_via_file(self, tmp_path):
        registry = self._sample_events()
        path = tmp_path / "events.jsonl"
        count = write_jsonl(registry.events, path)
        assert count == len(registry.events)
        assert read_jsonl(path) == registry.events

    def test_read_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_prometheus_rendering(self):
        registry = self._sample_events()
        text = render_prometheus(registry)
        assert "# TYPE phone_scans counter" in text
        assert 'phone_scans_total{phone="alice"} 3' in text
        assert "sim_queue_depth 5" in text
        assert 'server_lat_bucket{le="+Inf"} 1' in text

    def test_timeline_lists_every_source(self):
        registry = self._sample_events()
        text = render_timeline(registry.events, width=20)
        for source in ("phone", "sim", "core", "server"):
            assert source in text

    def test_timeline_empty_log(self):
        assert "empty" in render_timeline([])

    def test_report_summarise_round_trip(self):
        registry = self._sample_events()
        text = summarise(registry.events, width=30)
        assert "phone.scans" in text
        assert "core.cycle" in text
        assert "mean_duration" in text

    def test_report_cli(self, tmp_path, capsys):
        registry = self._sample_events()
        path = tmp_path / "events.jsonl"
        write_jsonl(registry.events, path)
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "counters (total over run):" in out
        assert report_main([str(tmp_path / "missing.jsonl")]) == 2


class TestSnapshot:
    def test_snapshot_covers_every_instrument(self):
        registry, _ = recording_registry()
        registry.counter("a.c").inc(2.0)
        registry.gauge("a.g").set(1.0)
        registry.histogram("a.h", buckets=[1.0]).observe(0.5)
        snap = registry.snapshot()
        assert snap["a.c"] == {"kind": COUNTER, "value": 2.0}
        assert snap["a.g"] == {"kind": GAUGE, "value": 1.0}
        assert snap["a.h"]["count"] == 1

    def test_bind_clock_rebinds_existing_instruments(self):
        registry, _ = recording_registry()
        counter = registry.counter("a.c")
        registry.bind_clock(lambda: 42.0)
        counter.inc()
        assert registry.events[-1].time == 42.0


class TestWallClockProfiler:
    def test_accumulates_labelled_sections(self):
        profiler = WallClockProfiler()
        with profiler.measure("work"):
            pass
        with profiler.measure("work"):
            pass
        assert profiler.count("work") == 2
        assert profiler.totals()["work"] >= 0.0
        assert "work" in profiler.to_text()

    def test_empty_label_rejected(self):
        profiler = WallClockProfiler()
        with pytest.raises(ValueError):
            with profiler.measure(""):
                pass
