"""Tests for the sharded BMS front door.

The pinned contract: every externally observable result — ingest
responses, occupancy snapshots, history statistics, merged telemetry
totals — is invariant to the shard count, the drain backend, and the
worker count.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.server import (
    BmsApiError,
    BmsClient,
    Request,
    RoomHistory,
    ShardedBmsService,
    shard_for,
)

BEACONS = ["b1", "b2", "b3"]

ROOM_BASES = {
    "lab": {"b1": 1.0, "b2": 6.0, "b3": 9.0},
    "office": {"b1": 6.0, "b2": 1.0, "b3": 6.0},
    "hall": {"b1": 9.0, "b2": 6.0, "b3": 1.0},
}


class NearestBeaconClassifier:
    """Deterministic picklable stub: room of the closest beacon.

    Learns column -> label from the training argmins; predict maps
    each row's argmin column back.  Orders of magnitude faster than
    the SVM, so the hypothesis sweep over shard/worker grids stays
    cheap, while still exercising the full vectorise/scale/predict
    drain path.
    """

    def fit(self, X, y):
        self._by_column = {}
        for row, label in zip(X, y):
            column = min(range(len(row)), key=lambda i: row[i])
            self._by_column.setdefault(column, str(label))
        return self

    def predict(self, X):
        return [
            self._by_column[min(range(len(row)), key=lambda i: row[i])]
            for row in X
        ]


def calibrate(service):
    for room, base in ROOM_BASES.items():
        for jitter in (0.0, 0.3, -0.3, 0.6):
            service.add_fingerprint(
                room, {k: v + jitter for k, v in base.items()}
            )
    return service.train()


def make_service(shards, **kwargs):
    kwargs.setdefault("classifier_factory", NearestBeaconClassifier)
    return ShardedBmsService(BEACONS, shards=shards, **kwargs)


def sighting_body(device, room, time=1.0):
    return {
        "device_id": device,
        "beacons": {k: v + 0.05 for k, v in ROOM_BASES[room].items()},
        "time": time,
    }


class TestShardFor:
    def test_stable_across_calls(self):
        assert shard_for("dev-0001", 4) == shard_for("dev-0001", 4)

    def test_spreads_keys(self):
        indices = {shard_for(f"dev-{i:04d}", 4) for i in range(64)}
        assert indices == {0, 1, 2, 3}

    def test_single_shard_always_zero(self):
        assert shard_for("anything", 1) == 0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_for("x", 0)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"queue_maxsize": 0},
            {"coalesce_max": 0},
            {"drain_policy": "lazy"},
            {"backend": "threads"},
            {"workers": 0},
            {"retry_after_s": -1.0},
            {"route_overrides": {"hq": 9}},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        merged = {"shards": 2}
        merged.update(kwargs)
        with pytest.raises(ValueError):
            ShardedBmsService(BEACONS, **merged)

    def test_each_shard_gets_its_own_classifier(self):
        service = make_service(3)
        stores = service._shards
        assert len({id(s.classifier) for s in stores}) == 3


class TestRouting:
    def test_device_key_is_stable_hash(self):
        service = make_service(4)
        assert service.shard_index_for("dev-7") == shard_for("dev-7", 4)

    def test_building_key_overrides_device_hash(self):
        service = make_service(4)
        index = service.shard_index_for("dev-7", building="north-wing")
        assert index == shard_for("north-wing", 4)

    def test_route_overrides_pin_buildings(self):
        service = make_service(4, route_overrides={"hq": 3})
        assert service.shard_index_for("any-device", building="hq") == 3

    def test_building_routed_device_still_readable(self):
        service = make_service(4, route_overrides={"hq": 3}, drain_policy="immediate")
        calibrate(service)
        body = dict(sighting_body("dev-x", "lab"), building="hq")
        response = service.router.dispatch(
            Request("POST", "/sightings", body=body, time=1.0)
        )
        assert response.status == 200 and response.body["shard"] == 3
        assert service.device_room("dev-x") == "lab"
        location = service.router.dispatch(
            Request("GET", "/devices/dev-x/location")
        )
        assert location.status == 200 and location.body["room"] == "lab"


class TestCalibrationBroadcast:
    def test_train_fits_every_shard(self):
        service = make_service(3)
        calibrate(service)
        assert service.trained
        assert all(store.trained for store in service._shards)

    def test_untrained_sighting_is_409(self):
        service = make_service(2)
        response = service.router.dispatch(
            Request("POST", "/sightings", body=sighting_body("d", "lab"))
        )
        assert response.status == 409

    def test_classify_matches_single_store(self):
        one = make_service(1)
        four = make_service(4)
        calibrate(one)
        calibrate(four)
        fingerprint = {"b1": 1.2, "b2": 5.5, "b3": 8.8}
        assert one.classify(fingerprint) == four.classify(fingerprint)


class TestDrainPolicies:
    def test_immediate_answers_with_room(self):
        service = make_service(2, drain_policy="immediate")
        calibrate(service)
        response = service.router.dispatch(
            Request("POST", "/sightings", body=sighting_body("d1", "office"))
        )
        assert response.status == 200
        assert response.body["room"] == "office"

    def test_manual_queues_until_drain(self):
        service = make_service(2, drain_policy="manual")
        calibrate(service)
        response = service.router.dispatch(
            Request("POST", "/sightings", body=sighting_body("d1", "hall"))
        )
        assert response.status == 202 and response.body["queued"]
        assert service.queue_depth() == 1
        assert service.device_room("d1") is None
        result = service.drain()
        assert result.count == 1
        assert result.entries[0][1:] == ("d1", "hall")
        assert service.device_room("d1") == "hall"

    def test_watermark_drains_at_coalesce_max(self):
        service = make_service(1, drain_policy="watermark", coalesce_max=3)
        calibrate(service)
        statuses = [
            service.router.dispatch(
                Request(
                    "POST", "/sightings", body=sighting_body(f"d{i}", "lab")
                )
            ).status
            for i in range(6)
        ]
        assert statuses == [202, 202, 200, 202, 202, 200]
        assert service.queue_depth() == 0

    def test_coalescer_packs_loose_posts_into_batches(self):
        service = make_service(1, drain_policy="manual", coalesce_max=4)
        calibrate(service)
        for i in range(10):
            service.router.dispatch(
                Request("POST", "/sightings", body=sighting_body(f"d{i}", "lab"))
            )
        service.drain()
        merged = service.merged_telemetry().snapshot()
        # 10 loose posts drain as ceil(10/4) = 3 coalesced batch ingests.
        assert merged["server.shard.coalesced_batches"]["value"] == 3.0
        assert merged["server.batches"]["value"] == 3.0
        assert merged["server.sightings"]["value"] == 10.0

    def test_batch_route_returns_rooms_in_request_order(self):
        service = make_service(4, drain_policy="immediate")
        calibrate(service)
        rooms = ["lab", "office", "hall", "office", "lab"]
        response = service.router.dispatch(
            Request(
                "POST",
                "/sightings/batch",
                body={
                    "sightings": [
                        sighting_body(f"d{i}", room, time=2.0)
                        for i, room in enumerate(rooms)
                    ]
                },
                time=2.0,
            )
        )
        assert response.status == 200
        assert response.body["rooms"] == rooms


class TestBackpressure:
    def overflow(self, service, n):
        last = None
        for i in range(n):
            last = service.router.dispatch(
                Request("POST", "/sightings", body=sighting_body(f"d{i}", "lab"))
            )
        return last

    def test_queue_full_is_429_with_hint(self):
        service = make_service(
            1, drain_policy="manual", queue_maxsize=2, retry_after_s=0.25
        )
        calibrate(service)
        response = self.overflow(service, 3)
        assert response.status == 429
        assert response.body["retry_after_s"] == 0.25
        assert response.body["shard"] == 0

    def test_rejections_counted(self):
        service = make_service(1, drain_policy="manual", queue_maxsize=2)
        calibrate(service)
        self.overflow(service, 5)
        snapshot = service.obs.snapshot()
        assert snapshot["server.backpressure.rejected"]["value"] == 3.0
        assert snapshot["server.backpressure.rejected_sightings"]["value"] == 3.0

    def test_drain_frees_capacity(self):
        service = make_service(1, drain_policy="manual", queue_maxsize=2)
        calibrate(service)
        self.overflow(service, 3)
        service.drain()
        response = service.router.dispatch(
            Request("POST", "/sightings", body=sighting_body("late", "lab"))
        )
        assert response.status == 202

    def test_batch_capacity_is_all_or_nothing(self):
        service = make_service(1, drain_policy="manual", queue_maxsize=3)
        calibrate(service)
        response = service.router.dispatch(
            Request(
                "POST",
                "/sightings/batch",
                body={
                    "sightings": [
                        sighting_body(f"d{i}", "lab") for i in range(4)
                    ]
                },
            )
        )
        assert response.status == 429
        assert service.queue_depth() == 0
        snapshot = service.obs.snapshot()
        assert snapshot["server.backpressure.rejected_sightings"]["value"] == 4.0


class TestMergedReads:
    def seed_three_rooms(self, service):
        calibrate(service)
        for i, room in enumerate(["lab", "office", "hall", "lab"]):
            service.router.dispatch(
                Request(
                    "POST",
                    "/sightings",
                    body=sighting_body(f"d{i}", room, time=5.0),
                )
            )

    def test_occupancy_merges_disjoint_devices(self):
        service = make_service(4, drain_policy="immediate")
        self.seed_three_rooms(service)
        response = service.router.dispatch(Request("GET", "/occupancy"))
        assert response.body["rooms"] == {"hall": 1, "lab": 2, "office": 1}
        assert len(response.body["devices"]) == 4

    def test_room_count_route(self):
        service = make_service(4, drain_policy="immediate")
        self.seed_three_rooms(service)
        response = service.router.dispatch(Request("GET", "/occupancy/lab"))
        assert response.body == {"room": "lab", "count": 2}

    def test_history_sums_across_shards(self):
        service = make_service(4, drain_policy="immediate")
        self.seed_three_rooms(service)
        service.record_history(10.0)
        service.record_history(20.0)
        response = service.router.dispatch(Request("GET", "/history/lab"))
        assert response.status == 200
        assert response.body["series"] == [(10.0, 2), (20.0, 2)]
        assert response.body["peak"] == 2

    def test_expiry_uses_global_now(self):
        service = make_service(2, drain_policy="immediate", device_timeout_s=30.0)
        calibrate(service)
        service.router.dispatch(
            Request("POST", "/sightings", body=sighting_body("old", "lab", 0.0))
        )
        service.router.dispatch(
            Request("POST", "/sightings", body=sighting_body("new", "hall", 100.0))
        )
        snap = service.snapshot()
        assert snap.time == 100.0
        assert "old" not in snap.devices and "new" in snap.devices

    def test_telemetry_route_reports_merged_totals(self):
        service = make_service(3, drain_policy="immediate")
        self.seed_three_rooms(service)
        response = service.router.dispatch(Request("GET", "/telemetry"))
        metrics = response.body["metrics"]
        assert metrics["server.sightings"]["value"] == 4.0
        assert metrics["server.frontdoor.sightings"]["value"] == 4.0

    def test_shards_route_exposes_depths(self):
        service = make_service(2, drain_policy="manual")
        calibrate(service)
        service.router.dispatch(
            Request("POST", "/sightings", body=sighting_body("d0", "lab"))
        )
        response = service.router.dispatch(Request("GET", "/shards"))
        assert response.body["shards"] == 2
        assert sum(response.body["queued"]) == 1


def run_config(shards, backend, workers, batches):
    """One full ingest run; returns the comparable observable state."""
    service = make_service(
        shards, drain_policy="manual", backend=backend, workers=workers
    )
    calibrate(service)
    drained = []
    for time, batch in enumerate(batches):
        response = service.router.dispatch(
            Request(
                "POST",
                "/sightings/batch",
                body={"sightings": batch},
                time=float(time + 1),
            )
        )
        assert response.status in (200, 202)
        result = service.drain()
        drained.extend(result.entries)
        service.record_history(float(time + 1))
    snap = service.snapshot()
    merged = service.merged_telemetry().snapshot()
    history = service.router.dispatch(Request("GET", "/history/lab")).body
    return {
        "drained": drained,
        "occupancy": json.dumps(
            {"time": snap.time, "rooms": snap.rooms, "devices": snap.devices},
            sort_keys=True,
        ),
        "sightings_total": merged["server.sightings"]["value"],
        "history": json.dumps(history, sort_keys=True),
    }


class TestShardCountInvariance:
    CONFIGS = [(1, "inline", 1), (2, "inline", 1), (4, "inline", 1),
               (4, "pool", 2), (2, "pool", 3)]

    def batches(self):
        rooms = list(ROOM_BASES)
        return [
            [
                sighting_body(f"dev-{t}-{i}", rooms[(t + i) % 3], float(t + 1))
                for i in range(5)
            ]
            for t in range(4)
        ]

    def test_results_identical_across_shards_backends_workers(self):
        batches = self.batches()
        results = [
            run_config(shards, backend, workers, batches)
            for shards, backend, workers in self.CONFIGS
        ]
        for other, config in zip(results[1:], self.CONFIGS[1:]):
            assert other == results[0], f"diverged at {config}"

    @settings(deadline=None, max_examples=30)
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=39),
                st.sampled_from(sorted(ROOM_BASES)),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_property_snapshot_and_results_shard_invariant(self, data):
        batches = [
            [
                sighting_body(f"dev-{index:02d}", room, float(step + 1))
                for index, room in data
            ]
            for step in range(2)
        ]
        reference = run_config(1, "inline", 1, batches)
        for shards in (2, 4):
            assert run_config(shards, "inline", 1, batches) == reference


class TestClientBackpressure:
    def make_full_service(self):
        service = make_service(1, drain_policy="manual", queue_maxsize=1,
                               retry_after_s=2.0)
        calibrate(service)
        service.router.dispatch(
            Request("POST", "/sightings", body=sighting_body("hog", "lab"))
        )
        return service

    def test_retry_honours_hint_and_succeeds_after_drain(self):
        service = self.make_full_service()
        observed = []

        def on_backpressure(next_time, attempt):
            observed.append((next_time, attempt))
            service.drain()

        client = BmsClient(service.router, on_backpressure=on_backpressure)
        result = client.post_sighting("d-new", ROOM_BASES["office"], time=1.0)
        assert result is None  # accepted-but-queued after the retry
        assert observed == [(3.0, 1)]  # 1.0 + the 2.0s retry_after hint
        assert client.backpressure_retries == 1
        service.drain()
        assert service.device_room("d-new") == "office"

    def test_bounded_retries_then_api_error(self):
        service = self.make_full_service()
        client = BmsClient(service.router, max_backpressure_retries=2)
        with pytest.raises(BmsApiError) as excinfo:
            client.post_sightings_batch(
                [sighting_body("d-new", "office")], time=1.0
            )
        assert excinfo.value.status == 429
        assert client.backpressure_retries == 2
        snapshot = service.obs.snapshot()
        assert snapshot["server.backpressure.rejected"]["value"] == 3.0

    def test_zero_retries_fails_fast(self):
        service = self.make_full_service()
        client = BmsClient(service.router, max_backpressure_retries=0)
        with pytest.raises(BmsApiError):
            client.post_sightings_batch(
                [sighting_body("d-new", "office")], time=1.0
            )
        assert client.backpressure_retries == 0


class TestTypedClientWrappers:
    def make_served_client(self):
        service = make_service(2, drain_policy="immediate")
        calibrate(service)
        return service, BmsClient(service.router)

    def test_post_sightings_batch_returns_rooms(self):
        _, client = self.make_served_client()
        rooms = client.post_sightings_batch(
            [sighting_body("a", "lab"), sighting_body("b", "hall")], time=1.0
        )
        assert rooms == ["lab", "hall"]

    def test_post_sightings_batch_raises_on_validation(self):
        _, client = self.make_served_client()
        with pytest.raises(BmsApiError) as excinfo:
            client.post_sightings_batch([], time=1.0)
        assert excinfo.value.status == 400

    def test_history_returns_typed_record(self):
        service, client = self.make_served_client()
        client.post_sightings_batch([sighting_body("a", "lab")], time=1.0)
        service.record_history(5.0)
        service.record_history(10.0)
        history = client.history("lab")
        assert isinstance(history, RoomHistory)
        assert history.room == "lab"
        assert history.series == ((5.0, 1), (10.0, 1))
        assert history.peak == 1
        assert history.utilisation == 1.0

    def test_batch_request_builder_shapes_wire_format(self):
        request = BmsClient.batch_request(
            [{"device_id": "a", "beacons": {"b1": 1.0}, "time": 2.0}], time=2.0
        )
        assert request.method == "POST"
        assert request.path == "/sightings/batch"
        assert request.body["sightings"][0]["device_id"] == "a"
