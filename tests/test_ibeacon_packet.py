"""Tests for iBeacon packet encoding/decoding (paper Figure 1)."""

import uuid

import pytest
from hypothesis import given, strategies as st

from repro.ibeacon.packet import (
    IBEACON_PREFIX,
    PACKET_LENGTH,
    IBeaconPacket,
    PacketDecodeError,
    decode_packet,
)

UUID_A = uuid.UUID("f7826da6-4fa2-4e98-8024-bc5b71e0893e")


def make_packet(**overrides):
    fields = dict(uuid=UUID_A, major=1, minor=2, tx_power=-59)
    fields.update(overrides)
    return IBeaconPacket(**fields)


class TestConstruction:
    def test_accepts_uuid_string(self):
        packet = IBeaconPacket(uuid=str(UUID_A), major=0, minor=0, tx_power=-59)
        assert packet.uuid == UUID_A

    @pytest.mark.parametrize("major", [-1, 65536])
    def test_rejects_out_of_range_major(self, major):
        with pytest.raises(ValueError):
            make_packet(major=major)

    @pytest.mark.parametrize("minor", [-1, 70000])
    def test_rejects_out_of_range_minor(self, minor):
        with pytest.raises(ValueError):
            make_packet(minor=minor)

    @pytest.mark.parametrize("tx", [-129, 128])
    def test_rejects_out_of_range_tx_power(self, tx):
        with pytest.raises(ValueError):
            make_packet(tx_power=tx)

    def test_identity_triple(self):
        assert make_packet(major=3, minor=9).identity == (UUID_A, 3, 9)

    def test_str_mentions_fields(self):
        text = str(make_packet(major=7, minor=11))
        assert "7" in text and "11" in text


class TestEncoding:
    def test_payload_is_30_bytes(self):
        assert len(make_packet().encode()) == PACKET_LENGTH == 30

    def test_payload_starts_with_prefix(self):
        assert make_packet().encode()[:9] == IBEACON_PREFIX

    def test_prefix_is_flags_plus_apple_manufacturer_header(self):
        # 02 01 06 | 1A FF | 4C 00 | 02 15 per Apple's spec.
        assert IBEACON_PREFIX == bytes(
            [0x02, 0x01, 0x06, 0x1A, 0xFF, 0x4C, 0x00, 0x02, 0x15]
        )

    def test_uuid_bytes_at_offset_9(self):
        payload = make_packet().encode()
        assert payload[9:25] == UUID_A.bytes

    def test_major_minor_big_endian(self):
        payload = make_packet(major=0x0102, minor=0x0304).encode()
        assert payload[25:27] == bytes([0x01, 0x02])
        assert payload[27:29] == bytes([0x03, 0x04])

    def test_tx_power_twos_complement(self):
        payload = make_packet(tx_power=-59).encode()
        assert payload[29] == (256 - 59)

    def test_positive_tx_power_encoding(self):
        payload = make_packet(tx_power=4).encode()
        assert payload[29] == 4


class TestDecoding:
    def test_roundtrip(self):
        packet = make_packet(major=1000, minor=65535, tx_power=-100)
        assert decode_packet(packet.encode()) == packet

    def test_rejects_wrong_length(self):
        with pytest.raises(PacketDecodeError):
            decode_packet(b"\x00" * 29)

    def test_rejects_wrong_prefix(self):
        payload = bytearray(make_packet().encode())
        payload[0] ^= 0xFF
        with pytest.raises(PacketDecodeError):
            decode_packet(bytes(payload))

    def test_rejects_non_bytes(self):
        with pytest.raises(PacketDecodeError):
            decode_packet("not bytes")

    def test_accepts_bytearray(self):
        packet = make_packet()
        assert decode_packet(bytearray(packet.encode())) == packet


class TestRoundtripProperty:
    @given(
        raw_uuid=st.binary(min_size=16, max_size=16),
        major=st.integers(0, 0xFFFF),
        minor=st.integers(0, 0xFFFF),
        tx_power=st.integers(-128, 127),
    )
    def test_encode_decode_roundtrip(self, raw_uuid, major, minor, tx_power):
        packet = IBeaconPacket(
            uuid=uuid.UUID(bytes=raw_uuid), major=major, minor=minor, tx_power=tx_power
        )
        assert decode_packet(packet.encode()) == packet

    @given(
        major=st.integers(0, 0xFFFF),
        minor=st.integers(0, 0xFFFF),
    )
    def test_encoding_is_injective_in_major_minor(self, major, minor):
        base = make_packet(major=major, minor=minor).encode()
        other = make_packet(major=minor, minor=major).encode()
        if (major, minor) != (minor, major):
            assert base != other


class TestEncodeCache:
    """encode() memoises the payload on the frozen dataclass."""

    def test_repeated_encode_returns_same_object(self):
        packet = make_packet()
        assert packet.encode() is packet.encode()

    def test_cached_payload_still_roundtrips(self):
        packet = make_packet()
        packet.encode()  # prime the cache
        assert decode_packet(packet.encode()) == packet

    def test_cache_does_not_leak_across_instances(self):
        a = make_packet(major=1)
        a.encode()
        b = make_packet(major=2)
        assert a.encode() != b.encode()
        assert decode_packet(b.encode()).major == 2

    def test_equality_and_hash_unaffected_by_cache(self):
        a = make_packet()
        b = make_packet()
        a.encode()  # only a carries the cached payload
        assert a == b
        assert hash(a) == hash(b)
