"""Tests for the office-day scenario generator."""

import pytest

from repro.building.presets import office_floor
from repro.building.scenarios import generate_office_day

HOUR = 3600.0


class TestGenerateOfficeDay:
    def test_worker_count(self):
        day = generate_office_day(office_floor(3), n_workers=5, seed=1)
        assert len(day.occupants) == 5
        assert len(day.schedules) == 5

    def test_deterministic(self):
        plan = office_floor(3)
        a = generate_office_day(plan, n_workers=3, seed=7)
        b = generate_office_day(plan, n_workers=3, seed=7)
        assert a.schedules == b.schedules

    def test_seed_changes_day(self):
        plan = office_floor(3)
        a = generate_office_day(plan, n_workers=3, seed=7)
        b = generate_office_day(plan, n_workers=3, seed=8)
        assert a.schedules != b.schedules

    def test_everyone_starts_and_ends_outside(self):
        plan = office_floor(3)
        day = generate_office_day(plan, n_workers=4, seed=2)
        for occupant in day.occupants:
            assert occupant.room_at(0.0, plan) == "outside"
            assert occupant.room_at(day.duration_s + HOUR, plan) == "outside"

    def test_everyone_present_midmorning(self):
        plan = office_floor(3)
        day = generate_office_day(plan, n_workers=4, seed=2)
        t = 3.0 * HOUR
        present = sum(
            1 for o in day.occupants if o.room_at(t, plan) != "outside"
        )
        assert present >= 3  # most of the workforce is in

    def test_schedules_time_ordered(self):
        day = generate_office_day(office_floor(2), n_workers=3, seed=4)
        for entries in day.schedules.values():
            times = [t for t, _ in entries]
            assert times == sorted(times)

    def test_desks_restricted_to_requested_rooms(self):
        plan = office_floor(4)
        day = generate_office_day(
            plan, n_workers=3, seed=3,
            desk_rooms=["office_1"], meeting_rooms=["office_2"],
        )
        for entries in day.schedules.values():
            rooms = {room for _, room in entries}
            assert rooms <= {"outside", "office_1", "office_2"}

    def test_ground_truth_counts(self):
        plan = office_floor(3)
        day = generate_office_day(plan, n_workers=4, seed=2)
        truth = day.ground_truth(plan)
        counts = truth(3.0 * HOUR)
        assert sum(counts.values()) >= 3
        assert all(v >= 1 for v in counts.values())
        # Before the day starts nobody is inside.
        assert truth(0.0) == {}

    @pytest.mark.parametrize(
        "kwargs", [{"n_workers": 0}, {"day_hours": 1.0}, {"desk_rooms": []}]
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            generate_office_day(office_floor(2), seed=1, **kwargs)
