"""Tests for the platform-faithful scanner semantics (paper Section V)."""

import numpy as np
import pytest

from repro.ble.air import AirInterface
from repro.ble.scanner_params import ScanSettings
from repro.building.geometry import Point
from repro.building.presets import single_room, two_room_corridor
from repro.phone.scanner import AndroidScanner, IosScanner
from repro.radio.channel import ChannelModel
from repro.radio.devices import DEVICE_PROFILES


def quiet_air(plan):
    return AirInterface(
        plan,
        ChannelModel(shadowing_sigma_db=0.0, fading=None, collision_loss_prob=0.0),
    )


def fixed(point):
    return lambda t: point


class TestAndroidSemantics:
    def test_one_sample_per_beacon_per_cycle(self):
        air = quiet_air(single_room())
        scanner = AndroidScanner(air, device="ideal", rng=np.random.default_rng(0))
        cycle = scanner.scan_cycle(fixed(Point(2.0, 4.0)), 0.0)
        assert cycle.surfaced_count == 1
        assert len(cycle.samples["1-1"]) == 1

    def test_multiple_beacons_one_sample_each(self):
        air = quiet_air(two_room_corridor())
        scanner = AndroidScanner(air, device="ideal", rng=np.random.default_rng(0))
        cycle = scanner.scan_cycle(fixed(Point(6.0, 1.5)), 0.0)
        assert cycle.beacon_ids == ["1-1", "1-2"]
        assert cycle.surfaced_count == 2

    def test_received_count_exceeds_surfaced(self):
        """The radio hears every advertisement; the API hides most."""
        air = quiet_air(single_room())
        scanner = AndroidScanner(air, device="ideal", rng=np.random.default_rng(0))
        cycle = scanner.scan_cycle(fixed(Point(2.0, 4.0)), 0.0)
        assert cycle.received_count > cycle.surfaced_count

    def test_out_of_order_sightings_dedup_per_cycle(self):
        """Regression: dedup keyed on the *last-seen* cycle re-surfaced
        duplicates when sightings arrived out of time order."""
        from repro.ble.air import Sighting

        air = quiet_air(single_room())
        scanner = AndroidScanner(air, device="ideal", rng=np.random.default_rng(0))

        def sighting(time, rssi):
            return Sighting(
                time=time,
                beacon_id="1-1",
                packet=None,
                rssi=rssi,
                true_distance_m=1.0,
            )

        # Cycle 0, then cycle 1, then cycle 0 again (out of order): the
        # third sighting duplicates cycle 0 and must NOT surface.
        sightings = [
            sighting(0.1, -50.0),
            sighting(2.1, -51.0),
            sighting(0.5, -52.0),
        ]
        samples = scanner._surface(sightings, 0.0)
        assert samples == {"1-1": [-50.0, -51.0]}

    def test_surfaced_sample_is_first_reception(self):
        air = quiet_air(single_room())
        scanner = AndroidScanner(air, device="ideal", rng=np.random.default_rng(1))
        pos = fixed(Point(2.0, 4.0))
        cycle = scanner.scan_cycle(pos, 0.0)
        sightings = air.observe(
            pos, DEVICE_PROFILES["ideal"], 0.0, 2.0, np.random.default_rng(1)
        )
        # Regenerate with the same rng seed: first sighting's RSSI must
        # match the surfaced sample.
        assert cycle.samples["1-1"][0] == pytest.approx(sightings[0].rssi)


class TestIosSemantics:
    def test_all_advertisements_surfaced(self):
        air = quiet_air(single_room())
        scanner = IosScanner(air, device="ideal", rng=np.random.default_rng(0))
        cycle = scanner.scan_cycle(fixed(Point(2.0, 4.0)), 0.0)
        assert cycle.surfaced_count == cycle.received_count
        assert cycle.surfaced_count >= 15

    def test_paper_example_ratio(self):
        """2 s scans: Android gets 1 sample/cycle, iOS ~20 at 100 ms."""
        air = quiet_air(single_room())
        android = AndroidScanner(air, device="ideal", rng=np.random.default_rng(0))
        ios = IosScanner(air, device="ideal", rng=np.random.default_rng(0))
        pos = fixed(Point(2.0, 4.0))
        a = android.scan_cycle(pos, 0.0).surfaced_count
        i = ios.scan_cycle(pos, 0.0).surfaced_count
        assert a == 1
        assert i >= 15 * a


class TestScanCycle:
    def test_mean_rssi(self):
        air = quiet_air(single_room())
        scanner = IosScanner(air, device="ideal", rng=np.random.default_rng(0))
        cycle = scanner.scan_cycle(fixed(Point(2.0, 4.0)), 0.0)
        values = cycle.samples["1-1"]
        assert cycle.mean_rssi("1-1") == pytest.approx(float(np.mean(values)))

    def test_mean_rssi_unknown_beacon_raises(self):
        air = quiet_air(single_room())
        scanner = AndroidScanner(air, device="ideal", rng=np.random.default_rng(0))
        cycle = scanner.scan_cycle(fixed(Point(2.0, 4.0)), 0.0)
        with pytest.raises(KeyError):
            cycle.mean_rssi("9-9")

    def test_cycle_window(self):
        air = quiet_air(single_room())
        scanner = AndroidScanner(
            air, device="ideal", settings=ScanSettings(3.0),
            rng=np.random.default_rng(0),
        )
        cycle = scanner.scan_cycle(fixed(Point(2.0, 4.0)), 6.0)
        assert cycle.t_start == 6.0
        assert cycle.t_end == 9.0

    def test_duty_cycle_limits_receptions(self):
        air = quiet_air(single_room())
        full = IosScanner(
            air, device="ideal", settings=ScanSettings(2.0, duty_cycle=1.0),
            rng=np.random.default_rng(0),
        )
        half = IosScanner(
            air, device="ideal", settings=ScanSettings(2.0, duty_cycle=0.5),
            rng=np.random.default_rng(0),
        )
        pos = fixed(Point(2.0, 4.0))
        assert half.scan_cycle(pos, 0.0).received_count < full.scan_cycle(
            pos, 0.0
        ).received_count


class TestScannerConstruction:
    def test_device_name_resolved(self):
        air = quiet_air(single_room())
        scanner = AndroidScanner(air, device="s3_mini")
        assert scanner.device.name == "s3_mini"

    def test_bad_device_type_rejected(self):
        air = quiet_air(single_room())
        with pytest.raises(TypeError):
            AndroidScanner(air, device=42)

    def test_unknown_device_name_raises(self):
        air = quiet_air(single_room())
        with pytest.raises(KeyError):
            AndroidScanner(air, device="pixel_99")
