"""Tests for the HVAC thermal model and demand-response controller."""

import pytest

from repro.hvac.controller import OccupancySetbackController, ThermostatConfig
from repro.hvac.simulation import simulate_hvac_day
from repro.hvac.thermal import RoomThermalModel


class TestThermalModel:
    def test_cools_toward_outdoor_without_heating(self):
        room = RoomThermalModel("r", temperature_c=20.0)
        for _ in range(600):
            room.step(60.0, outdoor_c=0.0, heating_on=False)
        assert room.temperature_c < 20.0

    def test_heats_when_on(self):
        room = RoomThermalModel("r", temperature_c=16.0)
        before = room.temperature_c
        room.step(600.0, outdoor_c=10.0, heating_on=True)
        assert room.temperature_c > before

    def test_occupants_add_heat(self):
        warm = RoomThermalModel("r", temperature_c=20.0)
        cold = RoomThermalModel("r", temperature_c=20.0)
        warm.step(600.0, outdoor_c=20.0, heating_on=False, occupants=5)
        cold.step(600.0, outdoor_c=20.0, heating_on=False, occupants=0)
        assert warm.temperature_c > cold.temperature_c

    def test_energy_accounting(self):
        room = RoomThermalModel("r", heater_power_w=2000.0)
        energy = room.step(60.0, outdoor_c=0.0, heating_on=True)
        assert energy == pytest.approx(2000.0 * 60.0)
        assert room.step(60.0, outdoor_c=0.0, heating_on=False) == 0.0

    def test_equilibrium_is_outdoor_when_off(self):
        room = RoomThermalModel("r", temperature_c=25.0)
        for _ in range(100000):
            room.step(600.0, outdoor_c=5.0, heating_on=False)
        assert room.temperature_c == pytest.approx(5.0, abs=0.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RoomThermalModel("r", thermal_resistance_k_per_w=0.0)
        with pytest.raises(ValueError):
            RoomThermalModel("r", thermal_capacity_j_per_k=-1.0)

    def test_rejects_bad_step(self):
        room = RoomThermalModel("r")
        with pytest.raises(ValueError):
            room.step(0.0, 0.0, False)
        with pytest.raises(ValueError):
            room.step(60.0, 0.0, False, occupants=-1)


class TestController:
    def test_occupied_room_uses_comfort_setpoint(self):
        ctrl = OccupancySetbackController()
        assert ctrl.setpoint_for(True) == ctrl.config.comfort_c

    def test_empty_room_uses_setback(self):
        ctrl = OccupancySetbackController()
        assert ctrl.setpoint_for(False) == ctrl.config.setback_c

    def test_baseline_ignores_occupancy(self):
        ctrl = OccupancySetbackController(always_comfort=True)
        assert ctrl.setpoint_for(False) == ctrl.config.comfort_c

    def test_heats_cold_occupied_room(self):
        ctrl = OccupancySetbackController()
        assert ctrl.heating_command("r", 15.0, occupied=True)

    def test_does_not_heat_warm_room(self):
        ctrl = OccupancySetbackController()
        assert not ctrl.heating_command("r", 25.0, occupied=True)

    def test_hysteresis_prevents_chatter(self):
        config = ThermostatConfig(comfort_c=21.0, deadband_c=0.5)
        ctrl = OccupancySetbackController(config)
        assert ctrl.heating_command("r", 20.0, True)   # cold: on
        assert ctrl.heating_command("r", 21.2, True)   # within band: stays on
        assert not ctrl.heating_command("r", 21.6, True)  # above band: off
        assert not ctrl.heating_command("r", 20.8, True)  # within band: stays off
        assert ctrl.heating_command("r", 20.4, True)   # below band: on

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ThermostatConfig(comfort_c=20.0, setback_c=22.0)
        with pytest.raises(ValueError):
            ThermostatConfig(deadband_c=0.0)


class TestDaySimulation:
    def occupancy(self, t):
        """One office occupied 9:00-17:00, the other always empty."""
        hour = (t / 3600.0) % 24
        return {"office_1": 1 if 9 <= hour < 17 else 0, "office_2": 0}

    def test_occupancy_control_saves_energy(self):
        rooms = ["office_1", "office_2"]
        baseline = simulate_hvac_day(
            rooms, self.occupancy, policy="baseline", duration_s=86400.0
        )
        oracle = simulate_hvac_day(
            rooms, self.occupancy, policy="oracle", duration_s=86400.0
        )
        assert oracle.hvac_energy_kwh < baseline.hvac_energy_kwh

    def test_empty_room_dominates_savings(self):
        rooms = ["office_1", "office_2"]
        oracle = simulate_hvac_day(
            rooms, self.occupancy, policy="oracle", duration_s=86400.0
        )
        assert oracle.room_energy_kwh["office_2"] < oracle.room_energy_kwh["office_1"]

    def test_baseline_has_no_comfort_violations_at_steady_state(self):
        rooms = ["office_1"]
        result = simulate_hvac_day(
            rooms,
            self.occupancy,
            policy="baseline",
            duration_s=86400.0,
            initial_temperature_c=21.0,
        )
        assert result.comfort_violation_degree_hours < 1.0

    def test_false_negative_belief_causes_discomfort(self):
        """Believing an occupied room empty - the paper's bad case."""
        rooms = ["office_1"]
        blind = simulate_hvac_day(
            rooms,
            self.occupancy,
            believed_occupancy_fn=lambda t: {"office_1": 0},
            policy="detected",
            duration_s=86400.0,
        )
        oracle = simulate_hvac_day(
            rooms, self.occupancy, policy="oracle", duration_s=86400.0
        )
        assert (
            blind.comfort_violation_degree_hours
            > oracle.comfort_violation_degree_hours
        )

    def test_result_fields(self):
        result = simulate_hvac_day(
            ["office_1"], self.occupancy, duration_s=3600.0
        )
        assert result.policy == "detected"
        assert result.hvac_energy_kwh >= 0.0
        assert set(result.room_energy_kwh) == {"office_1"}
