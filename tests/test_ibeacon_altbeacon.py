"""Tests for the AltBeacon packet variant."""

import uuid

import pytest
from hypothesis import given, strategies as st

from repro.ibeacon.altbeacon import (
    ALTBEACON_CODE,
    AltBeaconPacket,
    decode_altbeacon,
)
from repro.ibeacon.packet import IBeaconPacket, PacketDecodeError

UUID_A = uuid.UUID("f7826da6-4fa2-4e98-8024-bc5b71e0893e")


def make(**overrides):
    fields = dict(uuid=UUID_A, major=1, minor=2, tx_power=-59)
    fields.update(overrides)
    return AltBeaconPacket(**fields)


class TestEncoding:
    def test_length_is_28(self):
        assert len(make().encode()) == 28

    def test_beacon_code_present(self):
        assert make().encode()[4:6] == ALTBEACON_CODE

    def test_default_mfg_id_is_radius_networks(self):
        payload = make().encode()
        assert int.from_bytes(payload[2:4], "little") == 0x0118

    def test_roundtrip(self):
        packet = make(major=500, minor=65535, tx_power=-90, mfg_reserved=0x7F)
        assert decode_altbeacon(packet.encode()) == packet


class TestValidation:
    def test_rejects_wrong_length(self):
        with pytest.raises(PacketDecodeError):
            decode_altbeacon(b"\x00" * 27)

    def test_rejects_missing_beacon_code(self):
        payload = bytearray(make().encode())
        payload[4] = 0x00
        with pytest.raises(PacketDecodeError):
            decode_altbeacon(bytes(payload))

    def test_rejects_bad_reserved_byte(self):
        with pytest.raises(ValueError):
            make(mfg_reserved=256)

    def test_rejects_bad_tx_power(self):
        with pytest.raises(ValueError):
            make(tx_power=-200)


class TestInterop:
    def test_to_ibeacon_preserves_identity(self):
        alt = make(major=7, minor=9)
        ib = alt.to_ibeacon()
        assert isinstance(ib, IBeaconPacket)
        assert ib.identity == alt.identity

    def test_from_ibeacon_roundtrip(self):
        ib = IBeaconPacket(uuid=UUID_A, major=3, minor=4, tx_power=-65)
        assert AltBeaconPacket.from_ibeacon(ib).to_ibeacon() == ib

    @given(
        major=st.integers(0, 0xFFFF),
        minor=st.integers(0, 0xFFFF),
        tx_power=st.integers(-128, 127),
    )
    def test_roundtrip_property(self, major, minor, tx_power):
        packet = make(major=major, minor=minor, tx_power=tx_power)
        assert decode_altbeacon(packet.encode()) == packet
