"""Tests for coverage analysis and deployment validation."""

import pytest

from repro.building.coverage import analyse_coverage
from repro.building.floorplan import FloorPlan, Room
from repro.building.geometry import Point
from repro.building.presets import make_beacon, test_house as make_test_house
from repro.server.deployment import DeploymentManager


class TestCoverageGrid:
    def test_fully_covered_house(self):
        plan = make_test_house()
        grid = analyse_coverage(plan, resolution_m=1.0)
        assert grid.coverage_fraction(plan) > 0.99
        assert grid.holes(plan) == []

    def test_nearest_beacon_strongest_in_open_space(self):
        plan = FloorPlan(
            rooms=[Room("hall", 0, 0, 20, 4)],
            beacons=[
                make_beacon(1, Point(2, 2), "hall"),
                make_beacon(2, Point(18, 2), "hall"),
            ],
        )
        grid = analyse_coverage(plan, resolution_m=1.0)
        # Points near x=2 must be served by beacon 1-1, near x=18 by 1-2.
        j_left = int((2.0 - grid.xs[0]) / 1.0)
        j_right = int((18.0 - grid.xs[0]) / 1.0)
        i_mid = len(grid.ys) // 2
        assert grid.best_beacon[i_mid, j_left] == "1-1"
        assert grid.best_beacon[i_mid, j_right] == "1-2"

    def test_weak_beacon_leaves_holes(self):
        plan = FloorPlan(
            rooms=[Room("barn", 0, 0, 60, 60)],
            beacons=[
                make_beacon(1, Point(1, 1), "barn", tx_power=-75)
            ],
        )
        grid = analyse_coverage(plan, resolution_m=2.0, sensitivity_dbm=-90.0)
        assert grid.coverage_fraction(plan) < 1.0
        assert len(grid.holes(plan)) > 0

    def test_margin_reduces_coverage(self):
        plan = FloorPlan(
            rooms=[Room("barn", 0, 0, 40, 40)],
            beacons=[make_beacon(1, Point(1, 1), "barn", tx_power=-70)],
        )
        loose = analyse_coverage(plan, resolution_m=2.0, sensitivity_dbm=-92.0)
        tight = analyse_coverage(
            plan, resolution_m=2.0, sensitivity_dbm=-92.0, margin_db=15.0
        )
        assert tight.coverage_fraction(plan) < loose.coverage_fraction(plan)

    def test_room_coverage_per_room(self):
        plan = make_test_house()
        grid = analyse_coverage(plan, resolution_m=1.0)
        per_room = grid.room_coverage(plan)
        assert set(per_room) == set(plan.room_names)
        assert all(0.0 <= v <= 1.0 for v in per_room.values())

    def test_rejects_no_beacons(self):
        plan = FloorPlan(rooms=[Room("a", 0, 0, 4, 4)])
        with pytest.raises(ValueError):
            analyse_coverage(plan)

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            analyse_coverage(make_test_house(), resolution_m=0.0)


class TestDeploymentManager:
    def test_complete_deployment_ok(self):
        manager = DeploymentManager(make_test_house())
        report = manager.validate()
        assert report.ok
        assert report.coverage_fraction > 0.95

    def test_missing_room_beacon_is_error(self):
        plan = FloorPlan(
            rooms=[Room("a", 0, 0, 4, 4), Room("b", 4, 0, 8, 4)],
            beacons=[make_beacon(1, Point(2, 2), "a")],
        )
        report = DeploymentManager(plan).validate()
        assert not report.ok
        assert any(i.room == "b" and i.severity == "error" for i in report.issues)
        assert "b" in report.suggestions

    def test_mixed_uuids_is_error(self):
        import uuid

        plan = FloorPlan(
            rooms=[Room("a", 0, 0, 4, 4), Room("b", 4, 0, 8, 4)],
            beacons=[
                make_beacon(1, Point(2, 2), "a"),
                make_beacon(2, Point(6, 2), "b", uuid=uuid.uuid4()),
            ],
        )
        report = DeploymentManager(plan).validate()
        assert not report.ok
        assert any("UUID" in i.message for i in report.issues)

    def test_register_adds_to_plan(self):
        plan = FloorPlan(
            rooms=[Room("a", 0, 0, 4, 4)],
        )
        manager = DeploymentManager(plan)
        beacon_id = manager.register(make_beacon(9, Point(2, 2), "a"))
        assert beacon_id == "1-9"
        assert plan.beacon_ids == ["1-9"]
        assert manager.registered == ["1-9"]

    def test_register_duplicate_rejected(self):
        plan = FloorPlan(rooms=[Room("a", 0, 0, 4, 4)])
        manager = DeploymentManager(plan)
        manager.register(make_beacon(9, Point(2, 2), "a"))
        with pytest.raises(ValueError):
            manager.register(make_beacon(9, Point(1, 1), "a"))

    def test_undersized_beacon_warns_with_suggestion(self):
        plan = FloorPlan(
            rooms=[Room("barn", 0, 0, 60, 60)],
            beacons=[make_beacon(1, Point(1, 1), "barn", tx_power=-75)],
        )
        report = DeploymentManager(plan).validate(
            resolution_m=2.0, sensitivity_dbm=-85.0, margin_db=6.0
        )
        assert report.ok  # warnings only
        assert any(i.severity == "warning" for i in report.issues)
        assert "barn" in report.suggestions

    def test_issue_str(self):
        manager = DeploymentManager(
            FloorPlan(rooms=[Room("a", 0, 0, 4, 4)])
        )
        report = manager.validate()
        assert any("no beacon" in str(i) for i in report.issues)
