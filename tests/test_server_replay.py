"""Tests for deterministic BMS recovery from the sighting WAL.

The pinned contract: folding a WAL back through
:func:`~repro.server.replay.replay_wal` rebuilds the live server's
externally observable state *byte for byte* — occupancy snapshot,
history series, sighting counts, and every ``server.*`` telemetry
counter — and the replay chunk size never changes the result, only
the wall clock.  The same holds shard by shard for
:func:`~repro.server.replay.replay_sharded`, and end to end for
:func:`~repro.server.replay.server_from_manifest` directories.
"""

import pytest

from repro.ml.kernels import RbfKernel
from repro.ml.svm import SupportVectorClassifier
from repro.obs.metrics import MetricsRegistry
from repro.server.bms import BuildingManagementServer
from repro.server.client import BmsClient
from repro.server.persistence import save_calibration
from repro.server.replay import (
    CALIBRATION_NAME,
    load_manifest,
    replay_sharded,
    replay_wal,
    server_from_manifest,
    write_manifest,
)
from repro.server.sharded import ShardedBmsService
from repro.traces.wal import SightingWal

BEACONS = ["b1", "b2", "b3"]

ROOM_BASES = {
    "lab": {"b1": 1.0, "b2": 6.0, "b3": 9.0},
    "office": {"b1": 6.0, "b2": 1.0, "b3": 6.0},
    "hall": {"b1": 9.0, "b2": 6.0, "b3": 1.0},
}


def make_classifier():
    return SupportVectorClassifier(
        c=10.0, kernel=RbfKernel(gamma=0.5), seed=0
    )


def calibrate(server):
    for room, base in ROOM_BASES.items():
        for jitter in (0.0, 0.3, -0.3, 0.6):
            server.add_fingerprint(
                room, {k: v + jitter for k, v in base.items()}, 0.0
            )
    server.train()


def make_server(registry=None, wal=None):
    server = BuildingManagementServer(
        BEACONS,
        classifier=make_classifier(),
        registry=registry if registry is not None else MetricsRegistry(),
        wal=wal,
    )
    calibrate(server)
    return server


def near(room, delta=0.05):
    return {k: v + delta for k, v in ROOM_BASES[room].items()}


def drive_live(server):
    """A workload mixing every record kind, in a fixed order."""
    server.ingest_sighting("alice", near("lab"), 1.0)
    server.ingest_sighting("bob", near("office"), 1.5)
    server.record_history(2.0)
    server.ingest_batch(
        [
            {"device_id": "carol", "beacons": near("hall"), "time": 2.5},
            {"device_id": "alice", "beacons": near("office"), "time": 3.0},
        ]
    )
    server.record_history(4.0)
    server.refresh(
        [{"room": "lab", "beacons": near("lab", 0.2), "time": 4.5}]
    )
    server.ingest_sighting("dave", near("lab"), 5.0)
    server.record_history(6.0)


def server_metrics(registry):
    """The ``server.*`` slice of a registry state (live vs replay
    comparable: the live side additionally carries ``wal.*``, and the
    ``server.frontdoor.*`` / ``server.shard.*`` request and queue
    counters are transport-level — the replay applies state directly
    to the shard stores, it does not re-serve the original HTTP
    requests or re-run the drain queues)."""
    state = registry.state()
    transport = ("server.frontdoor.", "server.shard.")
    return {
        kind: {
            name: payload
            for name, payload in state[kind].items()
            if name.startswith("server.")
            and not name.startswith(transport)
        }
        for kind in ("counters", "gauges", "histograms")
    }


def observable_state(server):
    history = (
        server.merged_history()
        if hasattr(server, "merged_history")
        else server.history
    )
    return {
        "snapshot": server.snapshot(),
        "history": {
            room: history.series(room) for room in history.rooms()
        },
        "sightings": (
            server.sighting_count()
            if callable(server.sighting_count)
            else server.sighting_count
        ),
    }


class TestReplaySingleStore:
    def run_live(self, tmp_path):
        live_registry = MetricsRegistry()
        wal = SightingWal(tmp_path / "wal", registry=live_registry)
        live = make_server(registry=live_registry, wal=wal)
        drive_live(live)
        wal.close()
        return live, live_registry

    def rebuild(self, tmp_path, chunk=256):
        registry = MetricsRegistry()
        restored = make_server(registry=registry)
        report = replay_wal(restored, tmp_path / "wal", chunk=chunk)
        return restored, registry, report

    def test_state_is_byte_identical(self, tmp_path):
        live, live_registry = self.run_live(tmp_path)
        restored, registry, report = self.rebuild(tmp_path)
        assert observable_state(restored) == observable_state(live)
        assert server_metrics(registry) == server_metrics(live_registry)
        assert report.records == 8
        assert report.sightings == 5
        assert report.batches == 1
        assert report.history_marks == 3
        assert report.refreshes == 1
        assert report.span_s == 5.0

    def test_chunk_size_is_invisible(self, tmp_path):
        live, _ = self.run_live(tmp_path)
        states = [
            observable_state(self.rebuild(tmp_path, chunk=chunk)[0])
            for chunk in (1, 2, 256)
        ]
        assert states[0] == states[1] == states[2]

    def test_refresh_record_replays_the_model(self, tmp_path):
        live, _ = self.run_live(tmp_path)
        restored, _, _ = self.rebuild(tmp_path)
        # Post-refresh classifications must agree: the replayed model
        # saw the same extra fingerprint at the same point in the
        # stream.
        probes = [near(room, 0.11) for room in ROOM_BASES]
        assert restored.classify_batch(probes) == live.classify_batch(probes)
        assert len(list(restored.db.table("fingerprints"))) == len(
            list(live.db.table("fingerprints"))
        )

    def test_replay_into_own_wal_is_rejected(self, tmp_path):
        live, live_registry = self.run_live(tmp_path)
        target = make_server(
            registry=MetricsRegistry(),
            wal=SightingWal(tmp_path / "wal"),
        )
        with pytest.raises(ValueError, match="being replayed"):
            replay_wal(target, tmp_path / "wal")

    def test_chunk_validation(self, tmp_path):
        self.run_live(tmp_path)
        restored = make_server()
        with pytest.raises(ValueError, match="chunk"):
            replay_wal(restored, tmp_path / "wal", chunk=0)

    def test_replay_survives_compaction(self, tmp_path):
        live, live_registry = self.run_live(tmp_path)
        maintenance = SightingWal(tmp_path / "wal")
        assert maintenance.compact() >= 1
        restored, registry, _ = self.rebuild(tmp_path)
        assert observable_state(restored) == observable_state(live)
        assert server_metrics(registry) == server_metrics(live_registry)


@pytest.mark.parametrize("shards", [1, 4])
class TestReplaySharded:
    def make_service(self, registry, shards, wal_dir=None):
        service = ShardedBmsService(
            BEACONS,
            shards=shards,
            classifier_factory=make_classifier,
            registry=registry,
            drain_policy="immediate",
            wal_dir=wal_dir,
        )
        calibrate(service)
        return service

    def drive(self, service):
        client = BmsClient(service.router)
        for i in range(12):
            room = list(ROOM_BASES)[i % 3]
            client.post_sighting(
                f"dev-{i:02d}", near(room, 0.01 * i), float(i)
            )
        service.record_history(12.0)
        client.post_sightings_batch(
            [
                {
                    "device_id": f"dev-{i:02d}",
                    "beacons": near("hall"),
                    "time": 13.0,
                }
                for i in range(4)
            ]
        )
        service.record_history(14.0)

    def test_state_is_byte_identical(self, tmp_path, shards):
        live = self.make_service(
            MetricsRegistry(), shards, wal_dir=tmp_path / "wal"
        )
        self.drive(live)
        live.close_wals()

        restored = self.make_service(MetricsRegistry(), shards)
        report = replay_sharded(restored, tmp_path / "wal")
        assert observable_state(restored) == observable_state(live)
        assert report.sightings == 16
        assert report.history_marks == 2 * shards
        # Per-shard telemetry: merged server.* counters come out equal.
        assert server_metrics(restored.merged_telemetry()) == server_metrics(
            live.merged_telemetry()
        )
        # Routing decisions survive: device reads answer identically.
        for i in range(12):
            device = f"dev-{i:02d}"
            assert restored.device_room(device) == live.device_room(device)

    def test_shard_count_mismatch_rejected(self, tmp_path, shards):
        live = self.make_service(
            MetricsRegistry(), shards, wal_dir=tmp_path / "wal"
        )
        self.drive(live)
        live.close_wals()
        wrong = self.make_service(MetricsRegistry(), shards + 1)
        with pytest.raises(ValueError, match="shard"):
            replay_sharded(wrong, tmp_path / "wal")

    def test_misnumbered_shard_log_rejected(self, tmp_path, shards):
        # Logs pair with stores by parsed numeric suffix, never by
        # lexicographic sort position (shard-100 sorts before
        # shard-11): a suffix that is not its shard index is an error.
        live = self.make_service(
            MetricsRegistry(), shards, wal_dir=tmp_path / "wal"
        )
        self.drive(live)
        live.close_wals()
        last = tmp_path / "wal" / f"shard-{shards - 1:02d}"
        last.rename(tmp_path / "wal" / f"shard-{shards + 5:02d}")
        restored = self.make_service(MetricsRegistry(), shards)
        with pytest.raises(ValueError, match="does not match shard"):
            replay_sharded(restored, tmp_path / "wal")

    def test_unrecognised_shard_log_rejected(self, tmp_path, shards):
        live = self.make_service(
            MetricsRegistry(), shards, wal_dir=tmp_path / "wal"
        )
        self.drive(live)
        live.close_wals()
        (tmp_path / "wal" / "shard-extra").mkdir()
        restored = self.make_service(MetricsRegistry(), shards)
        with pytest.raises(ValueError, match="unrecognised"):
            replay_sharded(restored, tmp_path / "wal")


class TestManifest:
    def test_round_trip(self, tmp_path):
        write_manifest(
            tmp_path,
            beacon_ids=BEACONS,
            missing_value=25.0,
            device_timeout_s=60.0,
            svm_c=10.0,
            svm_gamma=0.5,
            seed=7,
            shards=3,
        )
        manifest = load_manifest(tmp_path)
        assert manifest["beacon_ids"] == BEACONS
        assert manifest["seed"] == 7
        assert manifest["shards"] == 3

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="manifest"):
            load_manifest(tmp_path)

    def test_server_from_manifest_single(self, tmp_path):
        live_registry = MetricsRegistry()
        wal = SightingWal(tmp_path / "shard-00", registry=live_registry)
        live = make_server(registry=live_registry, wal=wal)
        write_manifest(
            tmp_path,
            beacon_ids=BEACONS,
            missing_value=live.vectorizer.missing_value,
            device_timeout_s=live.device_timeout_s,
            svm_c=10.0,
            svm_gamma=0.5,
            seed=0,
            shards=1,
        )
        save_calibration(live, tmp_path / CALIBRATION_NAME)
        drive_live(live)
        wal.close()

        restored, report = server_from_manifest(tmp_path)
        assert observable_state(restored) == observable_state(live)
        assert report.records == 8

    def test_server_from_manifest_requires_calibration(self, tmp_path):
        write_manifest(
            tmp_path,
            beacon_ids=BEACONS,
            missing_value=25.0,
            device_timeout_s=60.0,
            svm_c=10.0,
            svm_gamma=0.5,
            seed=0,
        )
        with pytest.raises(ValueError, match="calibration"):
            server_from_manifest(tmp_path)
