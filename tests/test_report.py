"""Tests for the ASCII chart primitives and figure renderers."""

import pytest

from repro.report.ascii_plot import ascii_bar_chart, ascii_time_series
from repro.report.figures import (
    render_figure_4,
    render_figure_5,
    render_figure_8,
    render_figure_11,
)


class TestTimeSeries:
    def test_contains_markers(self):
        chart = ascii_time_series({"a": [(0.0, 1.0), (1.0, 2.0)]})
        assert "*" in chart

    def test_title_and_labels(self):
        chart = ascii_time_series(
            {"a": [(0.0, 1.0), (1.0, 2.0)]},
            title="My Plot",
            y_label="metres",
            x_label="seconds",
        )
        assert "My Plot" in chart
        assert "metres" in chart
        assert "seconds" in chart

    def test_legend_for_multiple_series(self):
        chart = ascii_time_series(
            {"raw": [(0.0, 1.0)], "filtered": [(0.0, 2.0)]}
        )
        assert "legend" in chart
        assert "raw" in chart and "filtered" in chart

    def test_single_series_no_legend(self):
        chart = ascii_time_series({"only": [(0.0, 1.0), (1.0, 1.5)]})
        assert "legend" not in chart

    def test_axis_extents_printed(self):
        chart = ascii_time_series({"a": [(5.0, -3.0), (15.0, 7.0)]})
        assert "7.00" in chart
        assert "-3.00" in chart

    def test_constant_series_no_crash(self):
        chart = ascii_time_series({"flat": [(0.0, 2.0), (10.0, 2.0)]})
        assert "flat" not in chart  # single series: no legend
        assert "2.00" in chart

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_time_series({"a": []})

    def test_dimensions_respected(self):
        chart = ascii_time_series(
            {"a": [(0.0, 0.0), (1.0, 1.0)]}, width=30, height=5
        )
        plot_lines = [l for l in chart.splitlines() if "|" in l]
        assert len(plot_lines) == 5


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = ascii_bar_chart({"big": 10.0, "small": 1.0})
        lines = {l.split("|")[0].strip(): l for l in chart.splitlines()}
        assert lines["big"].count("#") > lines["small"].count("#")

    def test_unit_suffix(self):
        chart = ascii_bar_chart({"x": 5.0}, unit=" mW")
        assert "5 mW" in chart

    def test_sorting(self):
        chart = ascii_bar_chart({"a": 1.0, "b": 9.0}, sort=True)
        assert chart.splitlines()[0].startswith("b")

    def test_zero_value_gets_empty_bar(self):
        chart = ascii_bar_chart({"none": 0.0, "some": 2.0})
        none_line = [l for l in chart.splitlines() if l.startswith("none")][0]
        assert "#" not in none_line

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({"bad": -1.0})


class TestFigureRenderers:
    def test_figure_4_mentions_std(self):
        out = render_figure_4()
        assert "Figure 4" in out and "std" in out

    def test_figure_5_shows_both_series(self):
        out = render_figure_5()
        assert "raw" in out and "filtered" in out

    def test_figure_8_shows_tradeoff(self):
        out = render_figure_8()
        assert "lag" in out and "0.65" in out

    def test_figure_11_shows_gap(self):
        out = render_figure_11()
        assert "Nexus 5" in out or "nexus_5" in out
