"""Tests for the end-to-end channel model."""

import numpy as np
import pytest

from repro.radio.channel import ChannelModel
from repro.radio.devices import DEVICE_PROFILES
from repro.radio.fading import RicianFading
from repro.radio.pathloss import LogDistancePathLoss

IDEAL = DEVICE_PROFILES["ideal"]
S3 = DEVICE_PROFILES["s3_mini"]


def quiet_channel(**overrides):
    """A channel with every random impairment disabled."""
    defaults = dict(
        shadowing_sigma_db=0.0,
        fading=None,
        collision_loss_prob=0.0,
        seed=0,
    )
    defaults.update(overrides)
    return ChannelModel(**defaults)


class TestLinkBudget:
    def test_quiet_channel_matches_path_loss_exactly(self, rng):
        channel = quiet_channel()
        budget = channel.link_budget("b1", (0.0, 0.0), (2.0, 0.0), -59.0, IDEAL, rng)
        expected = LogDistancePathLoss().rssi(2.0, -59.0)
        assert budget.rssi == pytest.approx(expected)
        assert budget.received

    def test_distance_recorded(self, rng):
        channel = quiet_channel()
        budget = channel.link_budget("b1", (0.0, 0.0), (3.0, 4.0), -59.0, IDEAL, rng)
        assert budget.distance_m == pytest.approx(5.0)

    def test_rx_gain_shifts_rssi(self, rng):
        channel = quiet_channel()
        base = channel.link_budget("b1", (0.0, 0.0), (2.0, 0.0), -59.0, IDEAL, rng)
        gained_profile = DEVICE_PROFILES["ideal"].__class__(
            name="gained", rx_gain_db=6.0, rssi_noise_db=0.0,
            sensitivity_dbm=-120.0, rssi_quantisation_db=0.0, extra_loss_prob=0.0,
        )
        gained = channel.link_budget(
            "b1", (0.0, 0.0), (2.0, 0.0), -59.0, gained_profile, rng
        )
        assert gained.rssi - base.rssi == pytest.approx(6.0)

    def test_wall_oracle_attenuates(self, rng):
        free = quiet_channel()
        walled = quiet_channel(wall_oracle=lambda a, b: ["concrete"])
        open_rssi = free.link_budget("b1", (0, 0), (2, 0), -59.0, IDEAL, rng).rssi
        blocked = walled.link_budget("b1", (0, 0), (2, 0), -59.0, IDEAL, rng).rssi
        assert open_rssi - blocked == pytest.approx(12.0)

    def test_below_sensitivity_not_received(self, rng):
        channel = quiet_channel()
        profile = DEVICE_PROFILES["ideal"].__class__(
            name="deaf", rx_gain_db=0.0, rssi_noise_db=0.0,
            sensitivity_dbm=-20.0, rssi_quantisation_db=0.0, extra_loss_prob=0.0,
        )
        budget = channel.link_budget("b1", (0, 0), (10, 0), -59.0, profile, rng)
        assert not budget.received

    def test_shadowing_constant_at_fixed_position(self):
        channel = ChannelModel(
            shadowing_sigma_db=4.0, fading=None, collision_loss_prob=0.0, seed=2
        )
        rng = np.random.default_rng(0)
        first = channel.link_budget("b1", (0, 0), (3, 1), -59.0, IDEAL, rng).shadowing_db
        second = channel.link_budget("b1", (0, 0), (3, 1), -59.0, IDEAL, rng).shadowing_db
        assert first == second

    def test_shadowing_differs_between_transmitters(self):
        channel = ChannelModel(
            shadowing_sigma_db=4.0, fading=None, collision_loss_prob=0.0, seed=2
        )
        rng = np.random.default_rng(0)
        a = channel.link_budget("b1", (0, 0), (3, 1), -59.0, IDEAL, rng).shadowing_db
        b = channel.link_budget("b2", (0, 0), (3, 1), -59.0, IDEAL, rng).shadowing_db
        assert a != b


class TestSampleRssi:
    def test_none_when_lost(self, rng):
        channel = quiet_channel(collision_loss_prob=1.0)
        assert channel.sample_rssi("b1", (0, 0), (2, 0), -59.0, IDEAL, rng) is None

    def test_value_when_received(self, rng):
        channel = quiet_channel()
        value = channel.sample_rssi("b1", (0, 0), (2, 0), -59.0, IDEAL, rng)
        assert isinstance(value, float)

    def test_loss_rate_roughly_matches_probability(self):
        channel = quiet_channel(collision_loss_prob=0.3)
        rng = np.random.default_rng(7)
        received = sum(
            channel.sample_rssi("b1", (0, 0), (2, 0), -59.0, IDEAL, rng) is not None
            for _ in range(2000)
        )
        assert 0.62 < received / 2000 < 0.78

    def test_stack_bug_losses_add_on_top(self):
        channel = quiet_channel(collision_loss_prob=0.0)
        rng = np.random.default_rng(7)
        received = sum(
            channel.sample_rssi("b1", (0, 0), (2, 0), -59.0, S3, rng) is not None
            for _ in range(2000)
        )
        # S3 Mini extra_loss_prob = 0.10.
        assert 0.85 < received / 2000 < 0.95

    def test_rejects_bad_collision_prob(self):
        with pytest.raises(ValueError):
            ChannelModel(collision_loss_prob=1.5)


class TestLinkBudgetMany:
    """The vectorised batch path pinned against the scalar budget."""

    POSITIONS = [(2.0, 0.0), (3.0, 4.0), (0.5, 0.5), (7.0, 1.0), (1.0, 6.0)]

    def _batch_inputs(self, n=None):
        rx = self.POSITIONS if n is None else self.POSITIONS[:n]
        k = len(rx)
        tx_ids = ["b1", "b2", "b1", "b3", "b2"][:k]
        tx_pos = [(0.0, 0.0)] * k
        powers = [-59.0, -59.0, -56.0, -59.0, -62.0][:k]
        return tx_ids, tx_pos, rx, powers

    def test_quiet_channel_matches_scalar_path_exactly(self, rng):
        channel = quiet_channel()
        tx_ids, tx_pos, rx, powers = self._batch_inputs()
        batch = channel.link_budget_many(tx_ids, tx_pos, rx, powers, IDEAL, rng)
        for i, budget in enumerate(batch.budgets()):
            scalar = channel.link_budget(
                tx_ids[i], tx_pos[i], rx[i], powers[i], IDEAL, rng
            )
            assert budget == scalar

    def test_deterministic_components_match_scalar_path(self, rng):
        channel = ChannelModel(
            shadowing_sigma_db=4.0,
            fading=RicianFading(k_factor=6.0),
            wall_oracle=lambda a, b: ["drywall"] if a[0] < b[0] else [],
            collision_loss_prob=0.05,
            seed=3,
        )
        tx_ids, tx_pos, rx, powers = self._batch_inputs()
        batch = channel.link_budget_many(tx_ids, tx_pos, rx, powers, S3, rng)
        for i in range(len(batch)):
            scalar = channel.link_budget(
                tx_ids[i], tx_pos[i], rx[i], powers[i], S3, rng
            )
            assert batch.distance_m[i] == scalar.distance_m
            assert batch.path_loss_db[i] == scalar.path_loss_db
            assert batch.wall_loss_db[i] == scalar.wall_loss_db
            assert batch.shadowing_db[i] == scalar.shadowing_db

    def test_same_seed_reproduces_batch(self):
        channel = ChannelModel(shadowing_sigma_db=4.0, seed=3)
        tx_ids, tx_pos, rx, powers = self._batch_inputs()
        first = channel.link_budget_many(
            tx_ids, tx_pos, rx, powers, S3, np.random.default_rng(11)
        )
        second = channel.link_budget_many(
            tx_ids, tx_pos, rx, powers, S3, np.random.default_rng(11)
        )
        assert np.array_equal(first.rssi, second.rssi)
        assert np.array_equal(first.received, second.received)

    def test_noise_draw_order_is_component_major(self):
        # With fading disabled, the first rng consumption is the noise
        # vector: one normal(0, sigma) draw per sample, batch-sized.
        channel = quiet_channel()
        tx_ids, tx_pos, rx, powers = self._batch_inputs()
        profile = IDEAL.__class__(
            name="noisy", rx_gain_db=0.0, rssi_noise_db=2.0,
            sensitivity_dbm=-120.0, rssi_quantisation_db=0.0, extra_loss_prob=0.0,
        )
        batch = channel.link_budget_many(
            tx_ids, tx_pos, rx, powers, profile, np.random.default_rng(5)
        )
        expected = np.random.default_rng(5).normal(0.0, 2.0, size=len(tx_ids))
        assert np.array_equal(batch.noise_db, expected)

    def test_quantisation_applied_to_batch(self, rng):
        channel = quiet_channel()
        tx_ids, tx_pos, rx, powers = self._batch_inputs()
        batch = channel.link_budget_many(tx_ids, tx_pos, rx, powers, S3, rng)
        q = S3.rssi_quantisation_db
        assert np.array_equal(batch.rssi, np.rint(batch.rssi / q) * q)

    def test_collision_probability_one_loses_everything(self, rng):
        channel = quiet_channel(collision_loss_prob=1.0)
        tx_ids, tx_pos, rx, powers = self._batch_inputs()
        batch = channel.link_budget_many(tx_ids, tx_pos, rx, powers, IDEAL, rng)
        assert not batch.received.any()

    def test_empty_batch(self, rng):
        channel = quiet_channel()
        batch = channel.link_budget_many([], [], [], [], IDEAL, rng)
        assert len(batch) == 0
        assert batch.budgets() == []

    def test_loss_rate_roughly_matches_probability(self):
        channel = quiet_channel(collision_loss_prob=0.3)
        rng = np.random.default_rng(7)
        n = 2000
        batch = channel.link_budget_many(
            ["b1"] * n, [(0, 0)] * n, [(2, 0)] * n, [-59.0] * n, IDEAL, rng
        )
        assert 0.62 < batch.received.mean() < 0.78
