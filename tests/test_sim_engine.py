"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(2.0, lambda s: order.append("b"))
        sim.schedule_at(1.0, lambda s: order.append("a"))
        sim.schedule_at(3.0, lambda s: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.5, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [4.5]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, lambda s: order.append(1))
        sim.schedule_at(1.0, lambda s: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, lambda s: order.append("low"), priority=1)
        sim.schedule_at(1.0, lambda s: order.append("high"), priority=0)
        sim.run()
        assert order == ["high", "low"]

    def test_schedule_in_is_relative(self):
        sim = Simulator()
        times = []
        def first(s):
            s.schedule_in(2.0, lambda s2: times.append(s2.now))
        sim.schedule_at(1.0, first)
        sim.run()
        assert times == [3.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda s: s.schedule_at(1.0, lambda s2: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_in(-1.0, lambda s: None)


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        hits = []
        event = sim.schedule_at(1.0, lambda s: hits.append(1))
        event.cancel()
        sim.run()
        assert hits == []

    def test_cancelled_event_not_counted_as_processed(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda s: None)
        event.cancel()
        sim.run()
        assert sim.events_processed == 0


class TestRunUntil:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        hits = []
        sim.schedule_at(1.0, lambda s: hits.append(1))
        sim.schedule_at(10.0, lambda s: hits.append(10))
        sim.run(until=5.0)
        assert hits == [1]
        assert sim.now == 5.0

    def test_until_leaves_future_events_pending(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda s: None)
        sim.run(until=5.0)
        assert sim.pending == 1

    def test_continue_after_until(self):
        sim = Simulator()
        hits = []
        sim.schedule_at(10.0, lambda s: hits.append(10))
        sim.run(until=5.0)
        sim.run()
        assert hits == [10]

    def test_max_events_bounds_work(self):
        sim = Simulator()
        def rearm(s):
            s.schedule_in(1.0, rearm)
        sim.schedule_at(0.0, rearm)
        sim.run(max_events=50)
        assert sim.events_processed == 50


class TestPeriodic:
    def test_every_fires_at_period(self):
        sim = Simulator()
        times = []
        sim.every(2.0, lambda s: times.append(s.now), until=10.0)
        sim.run()
        assert times == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_every_with_explicit_start(self):
        sim = Simulator()
        times = []
        sim.every(3.0, lambda s: times.append(s.now), start=1.0, until=8.0)
        sim.run()
        assert times == [1.0, 4.0, 7.0]

    def test_every_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            Simulator().every(0.0, lambda s: None)

    def test_every_start_beyond_until_never_fires(self):
        sim = Simulator()
        times = []
        event = sim.every(1.0, lambda s: times.append(s.now), start=20.0, until=10.0)
        sim.run()
        assert times == []
        assert event.cancelled

    def test_cancelling_first_event_stops_chain(self):
        sim = Simulator()
        times = []
        event = sim.every(1.0, lambda s: times.append(s.now), until=5.0)
        event.cancel()
        sim.run()
        assert times == []


class TestReentrancy:
    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []
        def reenter(s):
            try:
                s.run()
            except RuntimeError as exc:
                errors.append(str(exc))
        sim.schedule_at(1.0, reenter)
        sim.run()
        assert errors and "re-entrant" in errors[0]


class TestPendingSemantics:
    def test_pending_includes_cancelled_until_purged(self):
        sim = Simulator()
        live = sim.schedule_at(1.0, lambda s: None)
        dead = sim.schedule_at(2.0, lambda s: None)
        dead.cancel()
        assert live is not dead
        assert sim.pending == 2
        assert sim.pending_live == 1

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda s: None)
        event = sim.schedule_at(2.0, lambda s: None)
        event.cancel()
        event.cancel()
        assert sim.pending_live == 1

    def test_popping_cancelled_event_restores_counts(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda s: None)
        sim.schedule_at(2.0, lambda s: None)
        event.cancel()
        sim.run(until=1.5)
        assert sim.pending == sim.pending_live == 1

    def test_mass_cancellation_purges_lazily(self):
        sim = Simulator()
        events = [sim.schedule_at(float(i + 1), lambda s: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        # The purge threshold has been crossed: the heap no longer
        # holds the cancelled events.
        assert sim.pending_live == 50
        assert sim.pending < 200
        sim.run()
        assert sim.events_processed == 50

    def test_every_placeholder_cancel_is_harmless(self):
        sim = Simulator()
        placeholder = sim.every(1.0, lambda s: None, start=10.0, until=5.0)
        placeholder.cancel()
        assert sim.pending == sim.pending_live == 0


class TestEngineTelemetry:
    def test_dispatch_counts_and_queue_depth_gauge(self):
        from repro.obs import MemorySink, MetricsRegistry

        registry = MetricsRegistry(sink=MemorySink())
        sim = Simulator(registry=registry)
        sim.schedule_at(1.0, lambda s: None, label="tick")
        sim.schedule_at(2.0, lambda s: None, label="tick")
        sim.schedule_at(3.0, lambda s: None)
        sim.run()
        counter = registry.counter("sim.events")
        assert counter.value == 3
        assert counter.value_for(label="tick") == 2
        assert counter.value_for(label="unlabelled") == 1
        assert registry.gauge("sim.queue_depth").value == 0.0
        # Events are stamped with the engine's simulation clock.
        times = [e.time for e in registry.events]
        assert times == sorted(times)
        assert times[-1] == 3.0

    def test_default_registry_records_nothing(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda s: None)
        sim.run()
        assert sim.obs.events == []
        assert sim.obs.counter("sim.events").value == 1
