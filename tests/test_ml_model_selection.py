"""Tests for splitting, cross-validation and grid search."""

import numpy as np
import pytest

from repro.ml.knn import KNeighborsClassifier
from repro.ml.model_selection import GridSearch, KFold, cross_val_score, train_test_split


def dataset(n_per=30, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal((0, 0), 0.5, (n_per, 2)), rng.normal((4, 0), 0.5, (n_per, 2))]
    )
    y = np.array(["a"] * n_per + ["b"] * n_per)
    return X, y


class TestTrainTestSplit:
    def test_sizes(self):
        X, y = dataset()
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25, seed=1)
        assert len(Xte) == len(yte) == 15 or abs(len(Xte) - 15) <= 1
        assert len(Xtr) + len(Xte) == 60

    def test_disjoint_and_complete(self):
        X, y = dataset()
        Xtr, Xte, _, _ = train_test_split(X, y, seed=2)
        combined = np.vstack([Xtr, Xte])
        assert combined.shape[0] == X.shape[0]
        # Every original row appears exactly once.
        original = {tuple(row) for row in X}
        recombined = [tuple(row) for row in combined]
        assert set(recombined) == original
        assert len(recombined) == len(original)

    def test_stratified_keeps_class_ratio(self):
        X, y = dataset(n_per=40)
        _, _, ytr, yte = train_test_split(X, y, test_fraction=0.25, seed=3)
        assert sorted(set(yte)) == ["a", "b"]
        counts = {c: int(np.sum(yte == c)) for c in ("a", "b")}
        assert counts["a"] == counts["b"]

    def test_stratify_rejects_singleton_class(self):
        X = np.ones((3, 1))
        y = np.array(["a", "a", "b"])
        with pytest.raises(ValueError):
            train_test_split(X, y, stratify=True)

    def test_unstratified_split_works_with_singleton(self):
        X = np.ones((3, 1))
        y = np.array(["a", "a", "b"])
        Xtr, Xte, _, _ = train_test_split(X, y, stratify=False, seed=1)
        assert len(Xtr) + len(Xte) == 3

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5])
    def test_rejects_bad_fraction(self, fraction):
        X, y = dataset()
        with pytest.raises(ValueError):
            train_test_split(X, y, test_fraction=fraction)

    def test_deterministic_given_seed(self):
        X, y = dataset()
        a = train_test_split(X, y, seed=9)
        b = train_test_split(X, y, seed=9)
        np.testing.assert_array_equal(a[1], b[1])


class TestKFold:
    def test_folds_partition_indices(self):
        kf = KFold(n_splits=4, seed=0)
        seen = []
        for train, test in kf.split(20):
            seen.extend(test.tolist())
            assert set(train) | set(test) == set(range(20))
            assert set(train) & set(test) == set()
        assert sorted(seen) == list(range(20))

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_rejects_bad_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_number_of_folds(self):
        assert len(list(KFold(n_splits=3).split(9))) == 3


class TestCrossValScore:
    def test_scores_high_on_separable_data(self):
        X, y = dataset()
        scores = cross_val_score(KNeighborsClassifier(3), X, y, n_splits=4)
        assert scores.shape == (4,)
        assert scores.mean() > 0.9

    def test_does_not_mutate_estimator(self):
        X, y = dataset()
        estimator = KNeighborsClassifier(3)
        cross_val_score(estimator, X, y, n_splits=3)
        with pytest.raises(RuntimeError):
            estimator.predict(X[:1])  # estimator itself never fitted


class TestGridSearch:
    def test_picks_best_parameter(self):
        X, y = dataset()
        grid = GridSearch(
            lambda p: KNeighborsClassifier(k=p["k"]),
            {"k": [1, 3, 5]},
            n_splits=3,
        ).fit(X, y)
        assert grid.best_params_["k"] in (1, 3, 5)
        assert grid.best_score_ > 0.9
        assert len(grid.results_) == 3

    def test_best_estimator_is_fitted(self):
        X, y = dataset()
        grid = GridSearch(
            lambda p: KNeighborsClassifier(k=p["k"]), {"k": [1, 3]}
        ).fit(X, y)
        model = grid.best_estimator(X, y)
        assert model.score(X, y) > 0.9

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            GridSearch(lambda p: None, {})

    def test_best_estimator_before_fit_raises(self):
        grid = GridSearch(lambda p: KNeighborsClassifier(), {"k": [1]})
        with pytest.raises(RuntimeError):
            grid.best_estimator(np.ones((2, 2)), ["a", "b"])

    def test_cartesian_product_of_params(self):
        X, y = dataset()
        grid = GridSearch(
            lambda p: KNeighborsClassifier(k=p["k"], weights=p["w"]),
            {"k": [1, 3], "w": ["uniform", "distance"]},
            n_splits=3,
        ).fit(X, y)
        assert len(grid.results_) == 4
