"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.building.presets import single_room, test_house, two_room_corridor


@pytest.fixture
def rng():
    """A deterministic generator for channel draws in tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def lab_plan():
    """Single-room plan with one beacon."""
    return single_room()


@pytest.fixture
def corridor_plan():
    """Two rooms, one beacon each."""
    return two_room_corridor()


@pytest.fixture
def house_plan():
    """The five-room classification test house."""
    return test_house()
