"""Tests for the warm-start incremental refresh fast path.

The pinned contract mirrors the Gram cache's: models refreshed with
new calibration rows must be *byte*-identical — same alphas, same
intercepts, same support indices — to models cold-fitted from scratch
on the concatenated dataset, on every kernel, whether the fast path
(extended Grams, reused unaffected pair machines) is on or off.
``warm_start=True`` trades that guarantee for speed and is pinned by
prediction agreement instead.
"""

import numpy as np
import pytest

from repro.ml import gram_cache
from repro.ml.gram_cache import GramCache, training_fast_path_disabled
from repro.ml.kernels import LinearKernel, PolynomialKernel, RbfKernel
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.svm import SupportVectorClassifier
from repro.obs.metrics import MetricsRegistry

KERNELS = [
    RbfKernel(gamma=0.05),
    LinearKernel(),
    PolynomialKernel(degree=2, gamma=0.1, coef0=1.0),
]


def _clusters(seed, n_classes, n_per, d):
    """Small labelled blobs: separated enough for SMO to terminate."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-4.0, 4.0, size=(n_classes, d))
    X = np.concatenate(
        [c + rng.normal(scale=1.2, size=(n_per, d)) for c in centers]
    )
    y = np.repeat(np.arange(n_classes), n_per)
    return X, y


def _split(seed, n_classes=3, n_per=14, d=3, new_classes=(0,), n_new=4):
    """A base set plus new rows drawn from ``new_classes`` only."""
    X, y = _clusters(seed, n_classes, n_per, d)
    rng = np.random.default_rng(seed + 1)
    picks = rng.choice(
        np.flatnonzero(np.isin(y, list(new_classes))), size=n_new
    )
    jitter = rng.normal(scale=0.4, size=(n_new, d))
    return X, y, X[picks] + jitter, y[picks]


def _svc_state(svc):
    return {
        pair: (
            machine.dual_coef_.tobytes(),
            machine.intercept_,
            machine.support_indices_.tobytes(),
        )
        for pair, machine in svc._machines.items()
    }


@pytest.fixture(autouse=True)
def fresh_cache():
    gram_cache.default_cache().clear()
    yield
    gram_cache.default_cache().clear()


class TestGramExtend:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("m", [1, 5])
    def test_extend_is_bitwise_identical_to_direct(self, kernel, m):
        rng = np.random.default_rng(3)
        X_old = rng.normal(size=(12, 4))
        X_new = rng.normal(size=(m, 4))
        cache = GramCache()
        extended = cache.extend(kernel, X_old, X_new)
        direct = kernel(np.vstack([X_old, X_new]), np.vstack([X_old, X_new]))
        assert extended.shape == direct.shape
        assert extended.tobytes() == direct.tobytes()

    def test_extend_reuses_the_concatenated_entry(self):
        rng = np.random.default_rng(4)
        X_old = rng.normal(size=(10, 3))
        X_new = rng.normal(size=(3, 3))
        kernel = RbfKernel(gamma=0.1)
        cache = GramCache()
        first = cache.extend(kernel, X_old, X_new)
        extends_after_first = cache.extends
        second = cache.extend(kernel, X_old, X_new)
        assert second is first
        assert cache.extends == extends_after_first
        # And a plain full() on the concatenation hits the same entry.
        full = cache.full(kernel, np.vstack([X_old, X_new]))
        assert full is first

    def test_extend_counts_in_stats(self):
        rng = np.random.default_rng(5)
        cache = GramCache()
        cache.extend(
            RbfKernel(gamma=0.1),
            rng.normal(size=(8, 2)),
            rng.normal(size=(2, 2)),
        )
        assert cache.stats()["extends"] == 1


class TestObservedTelemetry:
    def test_counters_and_hit_ratio_reach_the_registry(self):
        registry = MetricsRegistry()
        rng = np.random.default_rng(6)
        X = rng.normal(size=(10, 3))
        kernel = RbfKernel(gamma=0.1)
        with gram_cache.observed(registry) as cache:
            cache.full(kernel, X)
            cache.full(kernel, X)
            cache.extend(kernel, X, rng.normal(size=(2, 3)))
        assert registry.counter("ml.gram.misses").value == 1.0
        assert registry.counter("ml.gram.hits").value >= 1.0
        assert registry.counter("ml.gram.extends").value == 1.0
        ratio = registry.gauge("ml.gram.hit_ratio").value
        assert 0.0 < ratio < 1.0
        # Detached on exit: later activity stays off this registry.
        cache.full(kernel, rng.normal(size=(4, 3)))
        assert registry.counter("ml.gram.misses").value == 1.0


class TestWarmStartSeeding:
    def test_box_violation_rejected(self):
        X, y = _clusters(7, 2, 10, 3)
        machine_X = X[y <= 1]
        svc = SupportVectorClassifier(c=1.0, kernel=LinearKernel())
        svc.fit(X, y)
        machine = svc._machines[(0, 1)]
        bad = np.full(4, 5.0)
        with pytest.raises(ValueError, match="box"):
            machine.fit(machine_X, np.where(y == 0, -1.0, 1.0), warm_start=(bad, 0.0))

    def test_oversized_seed_rejected(self):
        X, y = _clusters(8, 2, 8, 3)
        svc = SupportVectorClassifier(c=1.0, kernel=LinearKernel())
        svc.fit(X, y)
        machine = svc._machines[(0, 1)]
        with pytest.raises(ValueError, match="entries"):
            machine.fit(
                X,
                np.where(y == 0, -1.0, 1.0),
                warm_start=(np.zeros(len(X) + 1), 0.0),
            )

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_warm_start_refresh_agrees_on_predictions(self, kernel):
        X, y, X_new, y_new = _split(9)
        warm = SupportVectorClassifier(c=5.0, kernel=kernel, seed=0)
        warm.fit(X, y)
        warm.refresh(X_new, y_new, warm_start=True)
        cold = SupportVectorClassifier(c=5.0, kernel=kernel, seed=0)
        cold.fit(np.vstack([X, X_new]), np.concatenate([y, y_new]))
        probe, _ = _clusters(10, 3, 20, 3)
        assert np.array_equal(warm.predict(probe), cold.predict(probe))
        assert warm.refresh_stats_["warm_start"] is True


class TestSvcRefresh:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_refresh_is_byte_identical_to_cold_fit(self, kernel):
        X, y, X_new, y_new = _split(11)
        refreshed = SupportVectorClassifier(c=5.0, kernel=kernel, seed=0)
        refreshed.fit(X, y)
        refreshed.refresh(X_new, y_new)
        cold = SupportVectorClassifier(c=5.0, kernel=kernel, seed=0)
        cold.fit(np.vstack([X, X_new]), np.concatenate([y, y_new]))
        assert _svc_state(refreshed) == _svc_state(cold)
        assert list(refreshed.classes_) == list(cold.classes_)

    def test_new_class_refresh_is_byte_identical(self):
        X, y = _clusters(12, 3, 12, 3)
        extra_X, extra_y = _clusters(13, 4, 12, 3)
        X_new = extra_X[extra_y == 3][:5]
        y_new = np.full(5, 3)
        refreshed = SupportVectorClassifier(
            c=5.0, kernel=RbfKernel(gamma=0.05), seed=0
        )
        refreshed.fit(X, y)
        refreshed.refresh(X_new, y_new)
        cold = SupportVectorClassifier(
            c=5.0, kernel=RbfKernel(gamma=0.05), seed=0
        )
        cold.fit(np.vstack([X, X_new]), np.concatenate([y, y_new]))
        assert _svc_state(refreshed) == _svc_state(cold)
        assert 3 in refreshed.classes_

    def test_refresh_with_fast_path_disabled_matches(self):
        X, y, X_new, y_new = _split(14)
        refreshed = SupportVectorClassifier(
            c=5.0, kernel=RbfKernel(gamma=0.05), seed=0
        )
        refreshed.fit(X, y)
        with training_fast_path_disabled():
            refreshed.refresh(X_new, y_new)
        cold = SupportVectorClassifier(
            c=5.0, kernel=RbfKernel(gamma=0.05), seed=0
        )
        cold.fit(np.vstack([X, X_new]), np.concatenate([y, y_new]))
        assert _svc_state(refreshed) == _svc_state(cold)

    def test_refresh_stats_count_reused_pairs(self):
        # 4 classes, new rows only in class 0: pairs (1,2), (1,3),
        # (2,3) are untouched and must be reused verbatim.
        X, y, X_new, y_new = _split(15, n_classes=4, new_classes=(0,))
        svc = SupportVectorClassifier(
            c=5.0, kernel=RbfKernel(gamma=0.05), seed=0
        )
        svc.fit(X, y)
        before = {
            pair: machine
            for pair, machine in svc._machines.items()
        }
        svc.refresh(X_new, y_new)
        stats = svc.refresh_stats_
        assert stats["new_rows"] == len(X_new)
        assert stats["refitted_pairs"] == 3
        assert stats["reused_pairs"] == 3
        for pair in [(1, 2), (1, 3), (2, 3)]:
            assert svc._machines[pair] is before[pair]

    def test_empty_refresh_is_a_noop(self):
        X, y, _, _ = _split(16)
        svc = SupportVectorClassifier(
            c=5.0, kernel=RbfKernel(gamma=0.05), seed=0
        )
        svc.fit(X, y)
        state = _svc_state(svc)
        svc.refresh(np.empty((0, X.shape[1])), np.empty(0, dtype=int))
        assert _svc_state(svc) == state
        assert svc.refresh_stats_["refitted_pairs"] == 0

    def test_unfitted_refresh_raises(self):
        svc = SupportVectorClassifier(c=5.0, kernel=RbfKernel(gamma=0.05))
        with pytest.raises(RuntimeError, match="fit"):
            svc.refresh(np.zeros((1, 3)), np.zeros(1))

    def test_feature_width_mismatch_raises(self):
        X, y, X_new, y_new = _split(17)
        svc = SupportVectorClassifier(
            c=5.0, kernel=RbfKernel(gamma=0.05), seed=0
        )
        svc.fit(X, y)
        with pytest.raises(ValueError):
            svc.refresh(X_new[:, :2], y_new)


class TestOvrRefresh:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_refresh_is_byte_identical_to_cold_fit(self, kernel):
        from repro.ml.svm import BinarySVM

        X, y, X_new, y_new = _split(18)
        factory = lambda: BinarySVM(c=5.0, kernel=kernel, seed=0)
        refreshed = OneVsRestClassifier(factory)
        refreshed.fit(X, y)
        refreshed.refresh(X_new, y_new)
        cold = OneVsRestClassifier(factory)
        cold.fit(np.vstack([X, X_new]), np.concatenate([y, y_new]))
        probe, _ = _clusters(19, 3, 20, 3)
        assert np.array_equal(refreshed.predict(probe), cold.predict(probe))
        for label in refreshed.classes_:
            ours = refreshed._machines[label]
            theirs = cold._machines[label]
            assert ours.dual_coef_.tobytes() == theirs.dual_coef_.tobytes()
            assert ours.intercept_ == theirs.intercept_

    def test_unfitted_refresh_raises(self):
        ovr = OneVsRestClassifier()
        with pytest.raises(RuntimeError):
            ovr.refresh(np.zeros((1, 3)), np.zeros(1))
