"""Tests for the BMS server (fingerprints, training, occupancy)."""

import pytest

from repro.ml.proximity import ProximityClassifier
from repro.server.bms import BuildingManagementServer
from repro.server.rest import Request


def trained_bms(**kwargs):
    """A BMS with two rooms' worth of easy, separable fingerprints."""
    bms = BuildingManagementServer(["1-1", "1-2"], **kwargs)
    for i in range(12):
        bms.add_fingerprint("kitchen", {"1-1": 1.0 + 0.1 * i, "1-2": 8.0}, i)
        bms.add_fingerprint("living", {"1-1": 8.0, "1-2": 1.0 + 0.1 * i}, i)
    bms.train()
    return bms


class TestConstruction:
    def test_rejects_empty_beacons(self):
        with pytest.raises(ValueError):
            BuildingManagementServer([])

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            BuildingManagementServer(["1-1"], device_timeout_s=0.0)


class TestFingerprints:
    def test_add_fingerprint_stored(self):
        bms = BuildingManagementServer(["1-1"])
        bms.add_fingerprint("kitchen", {"1-1": 2.0})
        assert len(bms.fingerprints) == 1

    def test_rejects_empty_room(self):
        bms = BuildingManagementServer(["1-1"])
        with pytest.raises(ValueError):
            bms.add_fingerprint("", {"1-1": 2.0})

    def test_rejects_empty_beacons(self):
        bms = BuildingManagementServer(["1-1"])
        with pytest.raises(ValueError):
            bms.add_fingerprint("kitchen", {})


class TestTraining:
    def test_train_requires_two_classes(self):
        bms = BuildingManagementServer(["1-1"])
        bms.add_fingerprint("kitchen", {"1-1": 2.0})
        with pytest.raises(RuntimeError):
            bms.train()

    def test_training_accuracy_high_on_separable_data(self):
        bms = trained_bms()
        assert bms.trained

    def test_classify_before_train_raises(self):
        bms = BuildingManagementServer(["1-1"])
        with pytest.raises(RuntimeError):
            bms.classify({"1-1": 2.0})

    def test_classify_after_train(self):
        bms = trained_bms()
        assert bms.classify({"1-1": 1.2, "1-2": 8.0}) == "kitchen"
        assert bms.classify({"1-1": 8.0, "1-2": 1.2}) == "living"

    def test_proximity_classifier_skips_scaling(self):
        proximity = ProximityClassifier(
            {"1-1": "kitchen", "1-2": "living"}, ["1-1", "1-2"]
        )
        bms = trained_bms(classifier=proximity)
        assert bms.classify({"1-1": 1.0, "1-2": 8.0}) == "kitchen"


class TestOccupancy:
    def test_ingest_updates_device_room(self):
        bms = trained_bms()
        room = bms.ingest_sighting("alice", {"1-1": 1.0, "1-2": 8.0}, 10.0)
        assert room == "kitchen"
        assert bms.device_room("alice") == "kitchen"

    def test_snapshot_counts_devices_per_room(self):
        bms = trained_bms()
        bms.ingest_sighting("alice", {"1-1": 1.0, "1-2": 8.0}, 10.0)
        bms.ingest_sighting("bob", {"1-1": 1.1, "1-2": 8.0}, 10.0)
        bms.ingest_sighting("carol", {"1-1": 8.0, "1-2": 1.0}, 10.0)
        snap = bms.snapshot(10.0)
        assert snap.count("kitchen") == 2
        assert snap.count("living") == 1
        assert snap.total_occupants == 3

    def test_silent_device_expires(self):
        bms = trained_bms(device_timeout_s=20.0)
        bms.ingest_sighting("alice", {"1-1": 1.0, "1-2": 8.0}, 10.0)
        assert bms.snapshot(25.0).count("kitchen") == 1
        assert bms.snapshot(31.0).count("kitchen") == 0

    def test_sightings_recorded_in_db(self):
        bms = trained_bms()
        bms.ingest_sighting("alice", {"1-1": 1.0, "1-2": 8.0}, 10.0)
        assert bms.sighting_count == 1

    def test_device_room_unknown_is_none(self):
        assert trained_bms().device_room("nobody") is None

    def test_rejects_empty_device_id(self):
        bms = trained_bms()
        with pytest.raises(ValueError):
            bms.ingest_sighting("", {"1-1": 1.0}, 0.0)


class TestRestApi:
    def test_post_fingerprint(self):
        bms = BuildingManagementServer(["1-1", "1-2"])
        response = bms.router.dispatch(
            Request("POST", "/fingerprints",
                    body={"room": "kitchen", "beacons": {"1-1": 2.0}})
        )
        assert response.ok
        assert len(bms.fingerprints) == 1

    def test_post_fingerprint_validation_400(self):
        bms = BuildingManagementServer(["1-1"])
        response = bms.router.dispatch(
            Request("POST", "/fingerprints", body={"room": "", "beacons": {}})
        )
        assert response.status == 400

    def test_post_train_conflict_when_insufficient(self):
        bms = BuildingManagementServer(["1-1"])
        response = bms.router.dispatch(Request("POST", "/train"))
        assert response.status == 409

    def test_full_rest_flow(self):
        bms = BuildingManagementServer(["1-1", "1-2"])
        for i in range(6):
            bms.router.dispatch(Request(
                "POST", "/fingerprints",
                body={"room": "kitchen", "beacons": {"1-1": 1.0 + i * 0.2, "1-2": 8.0}},
            ))
            bms.router.dispatch(Request(
                "POST", "/fingerprints",
                body={"room": "living", "beacons": {"1-1": 8.0, "1-2": 1.0 + i * 0.2}},
            ))
        assert bms.router.dispatch(Request("POST", "/train")).ok
        response = bms.router.dispatch(Request(
            "POST", "/sightings",
            body={"device_id": "alice", "beacons": {"1-1": 1.2, "1-2": 8.0}, "time": 5.0},
        ))
        assert response.body["room"] == "kitchen"
        occupancy = bms.router.dispatch(Request("GET", "/occupancy", time=5.0))
        assert occupancy.body["rooms"] == {"kitchen": 1}
        room = bms.router.dispatch(Request("GET", "/occupancy/kitchen", time=5.0))
        assert room.body["count"] == 1
        location = bms.router.dispatch(
            Request("GET", "/devices/alice/location", time=5.0)
        )
        assert location.body["room"] == "kitchen"

    def test_sighting_missing_fields_400(self):
        bms = trained_bms()
        response = bms.router.dispatch(Request("POST", "/sightings", body={}))
        assert response.status == 400

    def test_sighting_before_training_409(self):
        bms = BuildingManagementServer(["1-1"])
        response = bms.router.dispatch(Request(
            "POST", "/sightings", body={"device_id": "a", "beacons": {"1-1": 1.0}}
        ))
        assert response.status == 409

    def test_unknown_device_location_404(self):
        bms = trained_bms()
        response = bms.router.dispatch(Request("GET", "/devices/ghost/location"))
        assert response.status == 404


def _random_fingerprints(n, seed=0):
    import numpy as np

    rng = np.random.default_rng(seed)
    return [
        {"1-1": float(rng.uniform(0.5, 9.0)), "1-2": float(rng.uniform(0.5, 9.0))}
        for _ in range(n)
    ]


class TestBatchIngestion:
    def test_classify_batch_matches_per_row(self):
        bms = trained_bms()
        fingerprints = _random_fingerprints(40, seed=1)
        batched = bms.classify_batch(fingerprints)
        per_row = [bms.classify(fp) for fp in fingerprints]
        assert batched == per_row

    def test_classify_batch_empty(self):
        assert trained_bms().classify_batch([]) == []

    def test_classify_batch_untrained_raises(self):
        with pytest.raises(RuntimeError):
            BuildingManagementServer(["1-1"]).classify_batch([{"1-1": 1.0}])

    def test_ingest_batch_equivalent_to_sequential_ingest(self):
        batch_bms, seq_bms = trained_bms(), trained_bms()
        fingerprints = _random_fingerprints(20, seed=2)
        sightings = [
            {"device_id": f"dev-{i % 7}", "beacons": fp, "time": float(i)}
            for i, fp in enumerate(fingerprints)
        ]
        batch_rooms = batch_bms.ingest_batch(sightings)
        seq_rooms = [
            seq_bms.ingest_sighting(s["device_id"], s["beacons"], s["time"])
            for s in sightings
        ]
        assert batch_rooms == seq_rooms
        assert batch_bms.sighting_count == seq_bms.sighting_count == 20
        assert batch_bms.snapshot(19.0).devices == seq_bms.snapshot(19.0).devices

    def test_ingest_batch_last_report_wins_per_device(self):
        bms = trained_bms()
        rooms = bms.ingest_batch(
            [
                {"device_id": "a", "beacons": {"1-1": 1.0, "1-2": 8.0}, "time": 1.0},
                {"device_id": "a", "beacons": {"1-1": 8.0, "1-2": 1.0}, "time": 2.0},
            ]
        )
        assert rooms == ["kitchen", "living"]
        assert bms.device_room("a") == "living"

    def test_ingest_batch_rejects_empty_device_id(self):
        bms = trained_bms()
        with pytest.raises(ValueError):
            bms.ingest_batch([{"device_id": "", "beacons": {"1-1": 1.0}, "time": 0.0}])

    def test_batch_metrics_counted(self):
        bms = trained_bms()
        bms.ingest_batch(
            [
                {"device_id": "a", "beacons": {"1-1": 1.0, "1-2": 8.0}, "time": 0.0},
                {"device_id": "b", "beacons": {"1-1": 8.0, "1-2": 1.0}, "time": 0.0},
            ]
        )
        assert bms.obs.counter("server.batches").value == 1.0
        assert bms.obs.counter("server.sightings").value == 2.0
        assert bms.obs.histogram("server.batch_size").mean == pytest.approx(2.0)


class TestBatchRestRoute:
    def test_batch_route_matches_per_report_route(self):
        batch_bms, seq_bms = trained_bms(), trained_bms()
        fingerprints = _random_fingerprints(16, seed=3)
        sightings = [
            {"device_id": f"dev-{i}", "beacons": fp, "time": float(i)}
            for i, fp in enumerate(fingerprints)
        ]
        batch_response = batch_bms.router.dispatch(
            Request("POST", "/sightings/batch", body={"sightings": sightings})
        )
        assert batch_response.ok
        seq_rooms = []
        for s in sightings:
            response = seq_bms.router.dispatch(
                Request("POST", "/sightings", body=s, time=s["time"])
            )
            assert response.ok
            seq_rooms.append(response.body["room"])
        assert batch_response.body["rooms"] == seq_rooms
        assert batch_response.body["count"] == 16

    def test_batch_route_empty_list_400(self):
        response = trained_bms().router.dispatch(
            Request("POST", "/sightings/batch", body={"sightings": []})
        )
        assert response.status == 400

    def test_batch_route_missing_fields_400(self):
        response = trained_bms().router.dispatch(
            Request("POST", "/sightings/batch", body={"sightings": [{"x": 1}]})
        )
        assert response.status == 400

    def test_batch_route_untrained_409(self):
        bms = BuildingManagementServer(["1-1"])
        response = bms.router.dispatch(
            Request(
                "POST",
                "/sightings/batch",
                body={"sightings": [{"device_id": "a", "beacons": {"1-1": 1.0}}]},
            )
        )
        assert response.status == 409

    def test_batch_route_default_time_from_request(self):
        bms = trained_bms()
        bms.router.dispatch(
            Request(
                "POST",
                "/sightings/batch",
                body={"sightings": [{"device_id": "a", "beacons": {"1-1": 1.0, "1-2": 8.0}}]},
                time=42.0,
            )
        )
        assert bms.snapshot(42.0).devices == {"a": "kitchen"}
