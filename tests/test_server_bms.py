"""Tests for the BMS server (fingerprints, training, occupancy)."""

import pytest

from repro.ml.proximity import ProximityClassifier
from repro.server.bms import BuildingManagementServer
from repro.server.rest import Request


def trained_bms(**kwargs):
    """A BMS with two rooms' worth of easy, separable fingerprints."""
    bms = BuildingManagementServer(["1-1", "1-2"], **kwargs)
    for i in range(12):
        bms.add_fingerprint("kitchen", {"1-1": 1.0 + 0.1 * i, "1-2": 8.0}, i)
        bms.add_fingerprint("living", {"1-1": 8.0, "1-2": 1.0 + 0.1 * i}, i)
    bms.train()
    return bms


class TestConstruction:
    def test_rejects_empty_beacons(self):
        with pytest.raises(ValueError):
            BuildingManagementServer([])

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            BuildingManagementServer(["1-1"], device_timeout_s=0.0)


class TestFingerprints:
    def test_add_fingerprint_stored(self):
        bms = BuildingManagementServer(["1-1"])
        bms.add_fingerprint("kitchen", {"1-1": 2.0})
        assert len(bms.fingerprints) == 1

    def test_rejects_empty_room(self):
        bms = BuildingManagementServer(["1-1"])
        with pytest.raises(ValueError):
            bms.add_fingerprint("", {"1-1": 2.0})

    def test_rejects_empty_beacons(self):
        bms = BuildingManagementServer(["1-1"])
        with pytest.raises(ValueError):
            bms.add_fingerprint("kitchen", {})


class TestTraining:
    def test_train_requires_two_classes(self):
        bms = BuildingManagementServer(["1-1"])
        bms.add_fingerprint("kitchen", {"1-1": 2.0})
        with pytest.raises(RuntimeError):
            bms.train()

    def test_training_accuracy_high_on_separable_data(self):
        bms = trained_bms()
        assert bms.trained

    def test_classify_before_train_raises(self):
        bms = BuildingManagementServer(["1-1"])
        with pytest.raises(RuntimeError):
            bms.classify({"1-1": 2.0})

    def test_classify_after_train(self):
        bms = trained_bms()
        assert bms.classify({"1-1": 1.2, "1-2": 8.0}) == "kitchen"
        assert bms.classify({"1-1": 8.0, "1-2": 1.2}) == "living"

    def test_proximity_classifier_skips_scaling(self):
        proximity = ProximityClassifier(
            {"1-1": "kitchen", "1-2": "living"}, ["1-1", "1-2"]
        )
        bms = trained_bms(classifier=proximity)
        assert bms.classify({"1-1": 1.0, "1-2": 8.0}) == "kitchen"


class TestOccupancy:
    def test_ingest_updates_device_room(self):
        bms = trained_bms()
        room = bms.ingest_sighting("alice", {"1-1": 1.0, "1-2": 8.0}, 10.0)
        assert room == "kitchen"
        assert bms.device_room("alice") == "kitchen"

    def test_snapshot_counts_devices_per_room(self):
        bms = trained_bms()
        bms.ingest_sighting("alice", {"1-1": 1.0, "1-2": 8.0}, 10.0)
        bms.ingest_sighting("bob", {"1-1": 1.1, "1-2": 8.0}, 10.0)
        bms.ingest_sighting("carol", {"1-1": 8.0, "1-2": 1.0}, 10.0)
        snap = bms.snapshot(10.0)
        assert snap.count("kitchen") == 2
        assert snap.count("living") == 1
        assert snap.total_occupants == 3

    def test_silent_device_expires(self):
        bms = trained_bms(device_timeout_s=20.0)
        bms.ingest_sighting("alice", {"1-1": 1.0, "1-2": 8.0}, 10.0)
        assert bms.snapshot(25.0).count("kitchen") == 1
        assert bms.snapshot(31.0).count("kitchen") == 0

    def test_sightings_recorded_in_db(self):
        bms = trained_bms()
        bms.ingest_sighting("alice", {"1-1": 1.0, "1-2": 8.0}, 10.0)
        assert bms.sighting_count == 1

    def test_device_room_unknown_is_none(self):
        assert trained_bms().device_room("nobody") is None

    def test_rejects_empty_device_id(self):
        bms = trained_bms()
        with pytest.raises(ValueError):
            bms.ingest_sighting("", {"1-1": 1.0}, 0.0)


class TestRestApi:
    def test_post_fingerprint(self):
        bms = BuildingManagementServer(["1-1", "1-2"])
        response = bms.router.dispatch(
            Request("POST", "/fingerprints",
                    body={"room": "kitchen", "beacons": {"1-1": 2.0}})
        )
        assert response.ok
        assert len(bms.fingerprints) == 1

    def test_post_fingerprint_validation_400(self):
        bms = BuildingManagementServer(["1-1"])
        response = bms.router.dispatch(
            Request("POST", "/fingerprints", body={"room": "", "beacons": {}})
        )
        assert response.status == 400

    def test_post_train_conflict_when_insufficient(self):
        bms = BuildingManagementServer(["1-1"])
        response = bms.router.dispatch(Request("POST", "/train"))
        assert response.status == 409

    def test_full_rest_flow(self):
        bms = BuildingManagementServer(["1-1", "1-2"])
        for i in range(6):
            bms.router.dispatch(Request(
                "POST", "/fingerprints",
                body={"room": "kitchen", "beacons": {"1-1": 1.0 + i * 0.2, "1-2": 8.0}},
            ))
            bms.router.dispatch(Request(
                "POST", "/fingerprints",
                body={"room": "living", "beacons": {"1-1": 8.0, "1-2": 1.0 + i * 0.2}},
            ))
        assert bms.router.dispatch(Request("POST", "/train")).ok
        response = bms.router.dispatch(Request(
            "POST", "/sightings",
            body={"device_id": "alice", "beacons": {"1-1": 1.2, "1-2": 8.0}, "time": 5.0},
        ))
        assert response.body["room"] == "kitchen"
        occupancy = bms.router.dispatch(Request("GET", "/occupancy", time=5.0))
        assert occupancy.body["rooms"] == {"kitchen": 1}
        room = bms.router.dispatch(Request("GET", "/occupancy/kitchen", time=5.0))
        assert room.body["count"] == 1
        location = bms.router.dispatch(
            Request("GET", "/devices/alice/location", time=5.0)
        )
        assert location.body["room"] == "kitchen"

    def test_sighting_missing_fields_400(self):
        bms = trained_bms()
        response = bms.router.dispatch(Request("POST", "/sightings", body={}))
        assert response.status == 400

    def test_sighting_before_training_409(self):
        bms = BuildingManagementServer(["1-1"])
        response = bms.router.dispatch(Request(
            "POST", "/sightings", body={"device_id": "a", "beacons": {"1-1": 1.0}}
        ))
        assert response.status == 409

    def test_unknown_device_location_404(self):
        bms = trained_bms()
        response = bms.router.dispatch(Request("GET", "/devices/ghost/location"))
        assert response.status == 404
