"""Statistical validation of the channel model.

These tests check the model produces the *statistics* it promises -
the foundation of every calibrated number in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.radio.channel import ChannelModel
from repro.radio.devices import DEVICE_PROFILES
from repro.radio.fading import RicianFading
from repro.radio.shadowing import ShadowingField

IDEAL = DEVICE_PROFILES["ideal"]


class TestShadowingStatistics:
    def test_autocorrelation_decays_with_distance(self):
        """Gudmundson: nearby points correlated, far points not."""
        rng = np.random.default_rng(0)
        near_deltas = []
        far_deltas = []
        for seed in range(40):
            field = ShadowingField(
                sigma_db=4.0, correlation_distance_m=3.0, link_seed=seed
            )
            base = field.sample(10.0, 10.0)
            near_deltas.append(field.sample(10.5, 10.0) - base)
            far_deltas.append(field.sample(40.0, 40.0) - base)
        assert np.std(near_deltas) < np.std(far_deltas)

    def test_field_mean_near_zero(self):
        field = ShadowingField(sigma_db=4.0, correlation_distance_m=1.0, link_seed=5)
        samples = [field.sample(x * 7.0, 0.0) for x in range(200)]
        assert abs(np.mean(samples)) < 1.0


class TestFadingStatistics:
    def test_rician_k_controls_envelope_variance(self):
        """Envelope variance must decrease monotonically in K."""
        stds = []
        for k in (0.0, 2.0, 8.0, 32.0):
            rng = np.random.default_rng(1)
            db = RicianFading(k).sample_db(rng, size=8000)
            stds.append(np.std(db))
        assert stds == sorted(stds, reverse=True)

    def test_rayleigh_deep_fade_probability(self):
        """P(power < 0.1) = 1 - exp(-0.1) ~ 9.5 % for Rayleigh."""
        rng = np.random.default_rng(2)
        db = RicianFading(0.0).sample_db(rng, size=20000)
        p_deep = np.mean(db < -10.0)
        assert p_deep == pytest.approx(1.0 - np.exp(-0.1), abs=0.01)


class TestEndToEndRssiStatistics:
    def test_mean_rssi_tracks_path_loss(self):
        """Averaged over fading/noise, RSSI must sit on the path-loss
        curve (per-position shadowing bias averaged over positions)."""
        channel = ChannelModel(seed=3)
        rng = np.random.default_rng(4)
        errors = []
        for i in range(30):
            # Different positions at the same 4 m range.
            angle = 2 * np.pi * i / 30
            rx = (4.0 * np.cos(angle), 4.0 * np.sin(angle))
            samples = [
                channel.sample_rssi("b1", (0.0, 0.0), rx, -59.0, IDEAL, rng)
                for _ in range(40)
            ]
            received = [s for s in samples if s is not None]
            errors.append(np.mean(received) - (-59.0 - 22.0 * np.log10(4.0)))
        assert abs(np.mean(errors)) < 1.5

    def test_rssi_variance_has_expected_scale(self):
        """At one fixed position the scan-to-scan std is fading +
        noise: a few dB for the default channel."""
        channel = ChannelModel(seed=5)
        rng = np.random.default_rng(6)
        samples = [
            channel.sample_rssi("b1", (0.0, 0.0), (3.0, 1.0), -59.0,
                                DEVICE_PROFILES["s3_mini"], rng)
            for _ in range(500)
        ]
        received = [s for s in samples if s is not None]
        assert 1.0 < np.std(received) < 6.0

    def test_loss_rate_increases_with_distance(self):
        channel = ChannelModel(seed=7)
        rng = np.random.default_rng(8)
        device = DEVICE_PROFILES["s3_mini"]

        def loss_rate(distance):
            lost = 0
            for _ in range(400):
                if channel.sample_rssi(
                    "b1", (0.0, 0.0), (distance, 0.0), -59.0, device, rng
                ) is None:
                    lost += 1
            return lost / 400

        assert loss_rate(40.0) > loss_rate(2.0)
