"""Tests for geometry primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.building.geometry import Point, Segment, segments_intersect


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Point(1, 2), Point(-3, 7)
        assert a.distance_to(b) == b.distance_to(a)

    def test_add_sub(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(1, 2) - Point(3, 4) == Point(-2, -2)

    def test_scaled(self):
        assert Point(1, -2).scaled(3.0) == Point(3, -6)

    def test_norm(self):
        assert Point(3, 4).norm() == pytest.approx(5.0)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestSegment:
    def test_length(self):
        assert Segment(Point(0, 0), Point(0, 7)).length == pytest.approx(7.0)

    def test_point_at_endpoints(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.point_at(0.0) == Point(0, 0)
        assert seg.point_at(1.0) == Point(10, 0)

    def test_point_at_midpoint(self):
        seg = Segment(Point(0, 0), Point(10, 4))
        assert seg.point_at(0.5) == Point(5, 2)


class TestIntersection:
    def test_crossing_segments(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        assert segments_intersect(a, b)

    def test_parallel_disjoint(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(0, 1), Point(2, 1))
        assert not segments_intersect(a, b)

    def test_touching_endpoint_counts(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(2, 0), Point(2, 2))
        assert segments_intersect(a, b)

    def test_collinear_overlapping(self):
        a = Segment(Point(0, 0), Point(4, 0))
        b = Segment(Point(2, 0), Point(6, 0))
        assert segments_intersect(a, b)

    def test_collinear_disjoint(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(2, 0), Point(3, 0))
        assert not segments_intersect(a, b)

    def test_t_junction(self):
        wall = Segment(Point(0, 0), Point(4, 0))
        ray = Segment(Point(2, -1), Point(2, 1))
        assert segments_intersect(wall, ray)

    def test_near_miss(self):
        wall = Segment(Point(0, 0), Point(4, 0))
        ray = Segment(Point(5, -1), Point(5, 1))
        assert not segments_intersect(wall, ray)

    def test_symmetric(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        assert segments_intersect(a, b) == segments_intersect(b, a)

    @given(
        ax=st.floats(-10, 10), ay=st.floats(-10, 10),
        bx=st.floats(-10, 10), by=st.floats(-10, 10),
        cx=st.floats(-10, 10), cy=st.floats(-10, 10),
        dx=st.floats(-10, 10), dy=st.floats(-10, 10),
    )
    def test_symmetry_property(self, ax, ay, bx, by, cx, cy, dx, dy):
        s1 = Segment(Point(ax, ay), Point(bx, by))
        s2 = Segment(Point(cx, cy), Point(dx, dy))
        assert segments_intersect(s1, s2) == segments_intersect(s2, s1)

    @given(
        ax=st.floats(-10, 10), ay=st.floats(-10, 10),
        bx=st.floats(-10, 10), by=st.floats(-10, 10),
    )
    def test_segment_intersects_itself(self, ax, ay, bx, by):
        seg = Segment(Point(ax, ay), Point(bx, by))
        assert segments_intersect(seg, seg)
