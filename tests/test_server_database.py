"""Tests for the in-memory database."""

import pytest

from repro.server.database import Database, Table


class TestTable:
    def test_insert_assigns_incrementing_ids(self):
        table = Table("t")
        assert table.insert({"a": 1}) == 1
        assert table.insert({"a": 2}) == 2

    def test_get_returns_copy(self):
        table = Table("t")
        rid = table.insert({"a": 1})
        row = table.get(rid)
        row["a"] = 99
        assert table.get(rid)["a"] == 1

    def test_get_missing_returns_none(self):
        assert Table("t").get(42) is None

    def test_insert_copies_input(self):
        table = Table("t")
        source = {"a": 1}
        rid = table.insert(source)
        source["a"] = 99
        assert table.get(rid)["a"] == 1

    def test_declared_columns_enforced(self):
        table = Table("t", columns=["a"])
        with pytest.raises(ValueError):
            table.insert({"b": 1})

    def test_select_all(self):
        table = Table("t")
        table.insert({"a": 1})
        table.insert({"a": 2})
        assert [r["a"] for r in table.select()] == [1, 2]

    def test_select_with_predicate(self):
        table = Table("t")
        table.insert({"a": 1})
        table.insert({"a": 2})
        assert len(table.select(lambda r: r["a"] > 1)) == 1

    def test_update_existing(self):
        table = Table("t")
        rid = table.insert({"a": 1})
        assert table.update(rid, {"a": 5})
        assert table.get(rid)["a"] == 5

    def test_update_missing_returns_false(self):
        assert not Table("t").update(7, {"a": 1})

    def test_update_cannot_change_id(self):
        table = Table("t")
        rid = table.insert({"a": 1})
        with pytest.raises(ValueError):
            table.update(rid, {"id": 99})

    def test_delete_returns_count(self):
        table = Table("t")
        table.insert({"a": 1})
        table.insert({"a": 2})
        assert table.delete(lambda r: r["a"] == 1) == 1
        assert len(table) == 1

    def test_iteration(self):
        table = Table("t")
        table.insert({"a": 1})
        assert [r["a"] for r in table] == [1]


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create_table("x")
        assert db.table("x").name == "x"

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("x")
        with pytest.raises(ValueError):
            db.create_table("x")

    def test_missing_table_raises(self):
        with pytest.raises(KeyError):
            Database().table("nope")

    def test_contains(self):
        db = Database()
        db.create_table("x")
        assert "x" in db
        assert "y" not in db

    def test_table_names_sorted(self):
        db = Database()
        db.create_table("zz")
        db.create_table("aa")
        assert db.table_names == ["aa", "zz"]
