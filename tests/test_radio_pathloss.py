"""Tests for the log-distance path-loss model and its inversion."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.radio.pathloss import (
    MAX_ESTIMATED_DISTANCE_M,
    MIN_DISTANCE_M,
    LogDistancePathLoss,
    distance_from_rssi,
    rssi_from_distance,
)


class TestForwardModel:
    def test_rssi_at_reference_distance_equals_tx_power(self):
        assert rssi_from_distance(1.0, -59.0, 2.0) == pytest.approx(-59.0)

    def test_rssi_decreases_with_distance(self):
        near = rssi_from_distance(1.0, -59.0, 2.0)
        far = rssi_from_distance(4.0, -59.0, 2.0)
        assert far < near

    def test_exponent_2_gives_6db_per_doubling(self):
        d1 = rssi_from_distance(2.0, -59.0, 2.0)
        d2 = rssi_from_distance(4.0, -59.0, 2.0)
        assert d1 - d2 == pytest.approx(20.0 * np.log10(2.0), abs=1e-9)

    def test_vectorised_input(self):
        out = rssi_from_distance(np.array([1.0, 10.0]), -59.0, 2.0)
        assert out.shape == (2,)
        assert out[0] > out[1]

    def test_distance_clamped_below_min(self):
        assert rssi_from_distance(0.0, -59.0, 2.0) == rssi_from_distance(
            MIN_DISTANCE_M, -59.0, 2.0
        )


class TestInversion:
    def test_inverts_reference_point(self):
        assert distance_from_rssi(-59.0, -59.0, 2.0) == pytest.approx(1.0)

    def test_rejects_nonpositive_exponent(self):
        with pytest.raises(ValueError):
            distance_from_rssi(-70.0, -59.0, 0.0)

    def test_clamps_very_weak_signal(self):
        assert distance_from_rssi(-200.0, -59.0, 2.0) == MAX_ESTIMATED_DISTANCE_M

    def test_clamps_very_strong_signal(self):
        assert distance_from_rssi(0.0, -59.0, 2.0) == MIN_DISTANCE_M

    @given(
        distance=st.floats(0.2, 50.0),
        tx_power=st.floats(-80.0, -40.0),
        exponent=st.floats(1.5, 4.0),
    )
    def test_roundtrip_property(self, distance, tx_power, exponent):
        rssi = rssi_from_distance(distance, tx_power, exponent)
        back = distance_from_rssi(rssi, tx_power, exponent)
        assert back == pytest.approx(distance, rel=1e-6)

    @given(
        rssi_a=st.floats(-95.0, -40.0),
        rssi_b=st.floats(-95.0, -40.0),
    )
    def test_monotone_decreasing_in_rssi(self, rssi_a, rssi_b):
        d_a = distance_from_rssi(rssi_a, -59.0, 2.2)
        d_b = distance_from_rssi(rssi_b, -59.0, 2.2)
        if rssi_a < rssi_b:
            assert d_a >= d_b
        elif rssi_a > rssi_b:
            assert d_a <= d_b


class TestConfiguredModel:
    def test_defaults(self):
        model = LogDistancePathLoss()
        assert model.exponent == 2.2
        assert model.reference_distance_m == 1.0

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=-1.0)

    def test_rejects_bad_reference(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(reference_distance_m=0.0)

    def test_model_matches_free_functions(self):
        model = LogDistancePathLoss(exponent=2.5)
        assert model.rssi(3.0, -59.0) == pytest.approx(
            rssi_from_distance(3.0, -59.0, 2.5)
        )
        assert model.distance(-70.0, -59.0) == pytest.approx(
            distance_from_rssi(-70.0, -59.0, 2.5)
        )

    def test_scalar_in_scalar_out(self):
        model = LogDistancePathLoss()
        assert isinstance(model.rssi(2.0, -59.0), float)
        assert isinstance(model.distance(-70.0, -59.0), float)
