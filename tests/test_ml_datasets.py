"""Tests for fingerprint datasets and vectorisation."""

import numpy as np
import pytest

from repro.ml.datasets import (
    MISSING_DISTANCE_M,
    FingerprintDataset,
    FingerprintVectorizer,
)


class TestVectorizer:
    def test_column_order_fixed(self):
        vec = FingerprintVectorizer(["b", "a"])
        row = vec.transform_one({"a": 1.0, "b": 2.0})
        np.testing.assert_allclose(row, [2.0, 1.0])

    def test_missing_filled(self):
        vec = FingerprintVectorizer(["a", "b"], missing_value=30.0)
        row = vec.transform_one({"a": 5.0})
        np.testing.assert_allclose(row, [5.0, 30.0])

    def test_unknown_beacons_ignored(self):
        vec = FingerprintVectorizer(["a"])
        row = vec.transform_one({"a": 1.0, "zzz": 9.0})
        assert row.shape == (1,)

    def test_batch_transform(self):
        vec = FingerprintVectorizer(["a", "b"])
        X = vec.transform([{"a": 1.0}, {"b": 2.0}])
        assert X.shape == (2, 2)

    def test_empty_batch(self):
        vec = FingerprintVectorizer(["a", "b"])
        assert vec.transform([]).shape == (0, 2)

    def test_rejects_empty_beacon_list(self):
        with pytest.raises(ValueError):
            FingerprintVectorizer([])

    def test_rejects_duplicate_beacons(self):
        with pytest.raises(ValueError):
            FingerprintVectorizer(["a", "a"])

    def test_default_missing_is_30m(self):
        assert FingerprintVectorizer(["a"]).missing_value == MISSING_DISTANCE_M


class TestDataset:
    def test_add_and_len(self):
        data = FingerprintDataset()
        data.add({"a": 1.0}, "kitchen", 0.0)
        data.add({"b": 2.0}, "living", 2.0)
        assert len(data) == 2

    def test_classes_sorted(self):
        data = FingerprintDataset()
        data.add({"a": 1.0}, "z")
        data.add({"a": 1.0}, "a")
        assert data.classes == ["a", "z"]

    def test_beacon_ids_union(self):
        data = FingerprintDataset()
        data.add({"a": 1.0}, "x")
        data.add({"b": 1.0, "c": 2.0}, "y")
        assert data.beacon_ids() == ["a", "b", "c"]

    def test_class_counts(self):
        data = FingerprintDataset()
        for _ in range(3):
            data.add({"a": 1.0}, "x")
        data.add({"a": 1.0}, "y")
        assert data.class_counts() == {"x": 3, "y": 1}

    def test_to_matrix_builds_vectorizer(self):
        data = FingerprintDataset()
        data.add({"a": 1.0}, "x")
        data.add({"b": 2.0}, "y")
        X, y, vec = data.to_matrix()
        assert X.shape == (2, 2)
        assert list(y) == ["x", "y"]
        assert vec.beacon_ids == ["a", "b"]

    def test_to_matrix_with_shared_vectorizer(self):
        data = FingerprintDataset()
        data.add({"a": 1.0}, "x")
        vec = FingerprintVectorizer(["a", "b", "c"])
        X, _, _ = data.to_matrix(vec)
        assert X.shape == (1, 3)

    def test_extend(self):
        a = FingerprintDataset()
        a.add({"x": 1.0}, "r1")
        b = FingerprintDataset()
        b.add({"y": 2.0}, "r2")
        a.extend(b)
        assert len(a) == 2
        # Deep copy: mutating b's dict must not affect a.
        b.fingerprints[0]["y"] = 99.0
        assert a.fingerprints[1]["y"] == 2.0

    def test_fingerprints_copied_on_add(self):
        data = FingerprintDataset()
        source = {"a": 1.0}
        data.add(source, "x")
        source["a"] = 99.0
        assert data.fingerprints[0]["a"] == 1.0
