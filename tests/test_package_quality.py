"""Repository-quality guards.

Meta-tests enforcing the documentation discipline of the codebase:
every module carries a docstring, every public symbol exported through
``__all__`` exists and is documented.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

ALL_MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro.")
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_dunder_all_entries_exist(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        pytest.skip(f"{module_name} has no __all__")
    for name in exported:
        assert hasattr(module, name), (
            f"{module_name}.__all__ exports missing symbol {name!r}"
        )


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            # Only check symbols defined in this package.
            if getattr(obj, "__module__", "").startswith("repro"):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{module_name}.{name} lacks a docstring"
                )


def test_package_tree_is_importable():
    """Every module imports cleanly (no hidden import-time errors)."""
    for module_name in ALL_MODULES:
        importlib.import_module(module_name)
