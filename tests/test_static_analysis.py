"""Static-analysis gate and linter unit tests.

The gate: `repro.devtools` must report zero findings over `src/repro`.
The unit tests: each planted fixture tree under `tests/fixtures/lint/`
must produce exactly one finding with the expected rule id and
location, and the CLI must exit non-zero on them.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.determinism import UNSEEDED_RNG, WALL_CLOCK
from repro.devtools.imports import MISSING_MODULE, MISSING_NAME
from repro.devtools.layering import IMPORT_CYCLE, LAYER_VIOLATION
from repro.devtools.lint import RULE_FAMILIES, run_lint
from repro.devtools.modules import discover_modules
from repro.devtools.numeric import SET_REDUCTION
from repro.devtools.shard_purity import (
    GLOBAL_WRITE,
    GRAM_MUTATION,
    UNPICKLABLE_WORKER,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FIXTURES = REPO / "tests" / "fixtures" / "lint"


class TestGate:
    """The tier-1 gate: the real tree is clean under every rule family."""

    def test_src_tree_has_zero_findings(self):
        assert run_lint(SRC) == []

    @pytest.mark.parametrize("family", RULE_FAMILIES)
    def test_each_family_clean_individually(self, family):
        assert run_lint(SRC, rules=[family]) == []

    def test_discovers_the_whole_tree(self):
        modules = discover_modules(SRC)
        assert "repro" in modules
        assert "repro.building.geometry" in modules
        assert "repro.devtools.lint" in modules
        assert len(modules) > 100


class TestFixtures:
    """Each planted violation yields exactly one, correctly-located finding."""

    def _single_finding(self, tree: str):
        findings = run_lint(FIXTURES / tree)
        assert len(findings) == 1, [str(f) for f in findings]
        return findings[0]

    def test_missing_module(self):
        finding = self._single_finding("missing_module")
        assert finding.rule == MISSING_MODULE
        assert finding.module == "repro.app"
        assert finding.path.endswith("missing_module/repro/app.py")
        assert finding.line == 3
        assert "repro.ghost" in finding.message

    def test_missing_name(self):
        finding = self._single_finding("missing_name")
        assert finding.rule == MISSING_NAME
        assert finding.module == "repro.app"
        assert finding.line == 3
        assert "missing" in finding.message

    def test_layer_violation(self):
        finding = self._single_finding("layer_violation")
        assert finding.rule == LAYER_VIOLATION
        assert finding.module == "repro.filters.extra"
        assert finding.path.endswith("repro/filters/extra.py")
        assert finding.line == 3
        assert "'server'" in finding.message

    def test_import_cycle(self):
        finding = self._single_finding("import_cycle")
        assert finding.rule == IMPORT_CYCLE
        assert finding.module == "repro.alpha"
        assert "repro.alpha -> repro.beta -> repro.alpha" in finding.message

    def test_wall_clock(self):
        finding = self._single_finding("wall_clock")
        assert finding.rule == WALL_CLOCK
        assert finding.module == "repro.sim.jitter"
        assert finding.path.endswith("repro/sim/jitter.py")
        assert finding.line == 10
        assert "time.time" in finding.message

    def test_shard_global_write(self):
        finding = self._single_finding("shard_global_write")
        assert finding.rule == GLOBAL_WRITE
        assert finding.module == "repro.ml.worker"
        assert finding.path.endswith("repro/ml/worker.py")
        assert finding.line == 9
        assert "'TOTALS'" in finding.message
        assert finding.severity == "error"

    def test_gram_mutation(self):
        finding = self._single_finding("gram_mutation")
        assert finding.rule == GRAM_MUTATION
        assert finding.module == "repro.ml.trainer"
        assert finding.path.endswith("repro/ml/trainer.py")
        assert finding.line == 8
        assert "'gram'" in finding.message

    def test_lambda_worker(self):
        finding = self._single_finding("lambda_worker")
        assert finding.rule == UNPICKLABLE_WORKER
        assert finding.module == "repro.ml.sweep_runner"
        assert finding.path.endswith("repro/ml/sweep_runner.py")
        assert finding.line == 7
        assert "lambda" in finding.message

    def test_set_reduction(self):
        finding = self._single_finding("set_reduction")
        assert finding.rule == SET_REDUCTION
        assert finding.module == "repro.sim.agg"
        assert finding.path.endswith("repro/sim/agg.py")
        assert finding.line == 6
        assert "hash order" in finding.message


class TestRuleBehaviour:
    """Synthetic trees exercising rule edges the fixtures don't cover."""

    def _tree(self, tmp_path, files):
        for relpath, body in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(body, encoding="utf-8")
        return tmp_path

    def test_third_party_imports_ignored(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/app.py": "import numpy\nfrom os.path import join\n",
            },
        )
        assert run_lint(root) == []

    def test_submodule_import_resolves_as_name(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/pkg/__init__.py": "",
                "repro/pkg/leaf.py": "X = 1\n",
                "repro/app.py": "from repro.pkg import leaf\n",
            },
        )
        assert run_lint(root) == []

    def test_relative_import_resolved(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/pkg/__init__.py": "",
                "repro/pkg/a.py": "from .b import gone\n",
                "repro/pkg/b.py": "Y = 2\n",
            },
        )
        findings = run_lint(root)
        assert [f.rule for f in findings] == [MISSING_NAME]

    def test_deferred_import_breaks_cycle(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/a.py": "from repro.b import B\nA = 1\n",
                "repro/b.py": "B = 2\n\ndef f():\n    from repro.a import A\n    return A\n",
            },
        )
        assert run_lint(root) == []

    def test_unseeded_random_flagged_in_sim_domain(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/traces/__init__.py": "",
                "repro/traces/gen.py": (
                    "import random\n\ndef draw():\n    return random.random()\n"
                ),
            },
        )
        findings = run_lint(root)
        assert [f.rule for f in findings] == [UNSEEDED_RNG]

    def test_seeded_random_instance_allowed(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/sim/__init__.py": "",
                "repro/sim/ok.py": (
                    "import random\n\ndef make(seed):\n"
                    "    return random.Random(seed)\n"
                ),
            },
        )
        assert run_lint(root) == []

    def test_wall_clock_allowed_outside_sim_domain(self, tmp_path):
        root = self._tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/cli_tools/__init__.py": "",
                "repro/cli_tools/timing.py": (
                    "import time\n\ndef stamp():\n    return time.time()\n"
                ),
            },
        )
        assert run_lint(root) == []

    def test_deleting_a_building_module_reports_every_importer(self, tmp_path):
        """The acceptance scenario: remove geometry.py from a scratch
        copy of src and the import-integrity rule must name every
        module that imports it."""
        scratch = tmp_path / "src"
        shutil.copytree(SRC, scratch, ignore=shutil.ignore_patterns("__pycache__"))
        (scratch / "repro" / "building" / "geometry.py").unlink()
        findings = run_lint(scratch, rules=["imports"])
        flagged = {f.module for f in findings}
        assert all(f.rule == MISSING_MODULE for f in findings)
        importers = {
            name
            for name, info in discover_modules(SRC).items()
            if any(r.target == "repro.building.geometry" for r in info.imports)
        }
        assert importers  # the package is genuinely load-bearing
        assert importers <= flagged


class TestCli:
    """End-to-end CLI behaviour: formats and exit codes."""

    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", *args],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )

    def test_clean_tree_exits_zero(self):
        result = self._run("--root", "src", "--format", "json")
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload == {"count": 0, "findings": []}

    @pytest.mark.parametrize(
        "tree, rule",
        [
            ("missing_module", MISSING_MODULE),
            ("missing_name", MISSING_NAME),
            ("layer_violation", LAYER_VIOLATION),
            ("import_cycle", IMPORT_CYCLE),
            ("wall_clock", WALL_CLOCK),
            ("shard_global_write", GLOBAL_WRITE),
            ("gram_mutation", GRAM_MUTATION),
            ("lambda_worker", UNPICKLABLE_WORKER),
            ("set_reduction", SET_REDUCTION),
        ],
    )
    def test_fixture_trees_exit_nonzero_with_structured_findings(self, tree, rule):
        result = self._run(
            "--root", str(FIXTURES / tree), "--format", "json"
        )
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == rule
        assert {"path", "line", "rule", "module", "message"} <= set(
            payload["findings"][0]
        )

    def test_text_format_mentions_rule(self):
        result = self._run(
            "--root", str(FIXTURES / "wall_clock"), "--format", "text"
        )
        assert result.returncode == 1
        assert "[determinism-wall-clock]" in result.stdout

    def test_unknown_rule_family_exits_two(self):
        result = self._run("--root", "src", "--rules", "nonsense")
        assert result.returncode == 2
        assert "unknown rule families" in result.stderr
