"""Tests for MetricsRegistry.merge() — the shard-telemetry fold.

Merge semantics per instrument family: counters sum, gauges keep the
last write by sim time, histograms add bucket-wise.  The hypothesis
property at the bottom is the contract the parallel engine relies on:
folding shard registries in *any* order reproduces the single-registry
serial run.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.events import TelemetryEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import MemorySink


class ManualClock:
    """A settable sim-time source for deterministic gauge stamps."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def registry_at(t=0.0, sink=None):
    clock = ManualClock(t)
    reg = MetricsRegistry(sink=sink, clock=clock)
    return reg, clock


class TestCounterMerge:
    def test_totals_sum(self):
        a, _ = registry_at()
        b, _ = registry_at()
        a.counter("reqs").inc(3)
        b.counter("reqs").inc(4)
        a.merge(b)
        assert a.counter("reqs").value == 7.0

    def test_series_sum_per_attribute_set(self):
        a, _ = registry_at()
        b, _ = registry_at()
        a.counter("reqs").inc(1, phone="x")
        b.counter("reqs").inc(2, phone="x")
        b.counter("reqs").inc(5, phone="y")
        a.merge(b)
        assert a.counter("reqs").value_for(phone="x") == 3.0
        assert a.counter("reqs").value_for(phone="y") == 5.0

    def test_missing_counter_is_created(self):
        a, _ = registry_at()
        b, _ = registry_at()
        b.counter("only.b").inc(2)
        a.merge(b)
        assert a.counter("only.b").value == 2.0


class TestGaugeMerge:
    def test_later_write_wins(self):
        a, ca = registry_at()
        b, cb = registry_at()
        ca.t = 1.0
        a.gauge("level").set(10.0)
        cb.t = 2.0
        b.gauge("level").set(20.0)
        a.merge(b)
        assert a.gauge("level").value == 20.0
        assert a.gauge("level").updated_at == 2.0

    def test_earlier_write_does_not_overwrite(self):
        a, ca = registry_at()
        b, cb = registry_at()
        ca.t = 5.0
        a.gauge("level").set(10.0)
        cb.t = 2.0
        b.gauge("level").set(20.0)
        a.merge(b)
        assert a.gauge("level").value == 10.0
        assert a.gauge("level").updated_at == 5.0

    def test_tie_breaks_to_larger_value(self):
        a, ca = registry_at()
        b, cb = registry_at()
        ca.t = cb.t = 3.0
        a.gauge("level").set(10.0)
        b.gauge("level").set(20.0)
        a.merge(b)
        assert a.gauge("level").value == 20.0
        # And the merge is symmetric: the larger value wins either way.
        c, cc = registry_at()
        cc.t = 3.0
        c.gauge("level").set(20.0)
        d, cd = registry_at()
        cd.t = 3.0
        d.gauge("level").set(10.0)
        c.merge(d)
        assert c.gauge("level").value == 20.0

    def test_unset_incoming_gauge_leaves_value(self):
        a, ca = registry_at()
        b, _ = registry_at()
        ca.t = 1.0
        a.gauge("level").set(10.0)
        b.gauge("level")  # created but never set
        a.merge(b)
        assert a.gauge("level").value == 10.0

    def test_attribute_series_merge_by_time(self):
        a, ca = registry_at()
        b, cb = registry_at()
        ca.t = 1.0
        a.gauge("level").set(10.0, room="r1")
        cb.t = 2.0
        b.gauge("level").set(20.0, room="r1")
        b.gauge("level").set(30.0, room="r2")
        a.merge(b)
        assert a.gauge("level").value_for(room="r1") == 20.0
        assert a.gauge("level").value_for(room="r2") == 30.0


class TestHistogramMerge:
    def test_bucketwise_addition(self):
        a, _ = registry_at()
        b, _ = registry_at()
        bounds = (1.0, 5.0)
        for v in (0.5, 3.0):
            a.histogram("lat", buckets=bounds).observe(v)
        for v in (0.7, 99.0):
            b.histogram("lat", buckets=bounds).observe(v)
        a.merge(b)
        hist = a.histogram("lat", buckets=bounds)
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.5 + 3.0 + 0.7 + 99.0)
        assert hist.bucket_counts() == {"1": 2, "5": 3, "+Inf": 4}

    def test_missing_histogram_created_with_incoming_bounds(self):
        a, _ = registry_at()
        b, _ = registry_at()
        b.histogram("lat", buckets=(2.0, 4.0)).observe(3.0)
        a.merge(b)
        assert a.histogram("lat").bounds == (2.0, 4.0)
        assert a.histogram("lat").count == 1

    def test_bound_mismatch_raises(self):
        a, _ = registry_at()
        b, _ = registry_at()
        a.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("lat", buckets=(3.0, 4.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge(b)


class TestMergeProtocol:
    def test_accepts_state_dict_and_returns_self(self):
        a, _ = registry_at()
        b, _ = registry_at()
        b.counter("reqs").inc(2)
        assert a.merge(b.state()) is a
        assert a.counter("reqs").value == 2.0

    def test_rejects_non_state_objects(self):
        a, _ = registry_at()
        with pytest.raises(TypeError):
            a.merge(42)

    def test_state_survives_pickling(self):
        b, cb = registry_at()
        cb.t = 3.0
        b.counter("reqs").inc(2, phone="x")
        b.gauge("level").set(7.0)
        b.histogram("lat", buckets=(1.0,)).observe(0.4)
        revived = pickle.loads(pickle.dumps(b.state()))
        a, _ = registry_at()
        a.merge(revived)
        assert a.counter("reqs").value_for(phone="x") == 2.0
        assert a.gauge("level").value == 7.0
        assert a.gauge("level").updated_at == 3.0
        assert a.histogram("lat").count == 1

    def test_events_append_and_resort(self):
        a, ca = registry_at(sink=MemorySink())
        b, cb = registry_at(sink=MemorySink())
        ca.t = 5.0
        a.counter("reqs").inc(1)
        cb.t = 2.0
        b.counter("reqs").inc(1)
        a.merge(b)
        assert [e.time for e in a.events] == [2.0, 5.0]

    def test_merge_emits_no_new_events(self):
        a, _ = registry_at(sink=MemorySink())
        b, _ = registry_at()  # NullSink: no event log travels
        b.counter("reqs").inc(3)
        b.gauge("level").set(1.0)
        a.merge(b)
        assert a.events == []


# -- the serial-equivalence property ------------------------------------

_OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # shard index
        st.sampled_from(["counter", "gauge", "histogram"]),
        st.sampled_from(["m1", "m2"]),
        # Integer-valued floats: sums are exact regardless of the
        # order shards fold in, so equality can be bitwise.
        st.integers(min_value=0, max_value=100).map(float),
    ),
    max_size=25,
)


@settings(deadline=None, max_examples=50)
@given(ops=_OPS, order=st.permutations([0, 1, 2]))
def test_merging_shards_in_any_order_equals_serial_run(ops, order):
    """Shard registries folded in any order == one serial registry.

    Each operation carries a unique sim time (its sequence index), so
    the serial run's last gauge write is well defined and last-write-
    by-time merging must reproduce it exactly.
    """
    serial, serial_clock = registry_at()
    shard_regs = []
    shard_clocks = []
    for _ in range(3):
        reg, clock = registry_at()
        shard_regs.append(reg)
        shard_clocks.append(clock)

    for t, (shard, kind, name, value) in enumerate(ops):
        serial_clock.t = float(t)
        shard_clocks[shard].t = float(t)
        for reg in (serial, shard_regs[shard]):
            if kind == "counter":
                reg.counter(name).inc(value)
            elif kind == "gauge":
                reg.gauge(name).set(value)
            else:
                reg.histogram(name, buckets=(10.0, 50.0)).observe(value)

    merged, _ = registry_at()
    for i in order:
        merged.merge(shard_regs[i].state())

    merged_state = merged.state()
    serial_state = serial.state()
    assert merged_state == serial_state
