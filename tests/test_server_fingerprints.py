"""Tests for the fingerprint store."""

import pytest

from repro.server.database import Database
from repro.server.fingerprints import FingerprintStore


def store():
    return FingerprintStore(Database())


class TestStore:
    def test_add_and_count(self):
        s = store()
        s.add("kitchen", {"1-1": 2.0}, 1.0)
        s.add("living", {"1-2": 3.0}, 2.0)
        assert len(s) == 2

    def test_rejects_empty_room(self):
        with pytest.raises(ValueError):
            store().add("", {"1-1": 2.0})

    def test_rejects_empty_fingerprint(self):
        with pytest.raises(ValueError):
            store().add("kitchen", {})

    def test_rooms_sorted(self):
        s = store()
        s.add("z", {"a": 1.0})
        s.add("a", {"a": 1.0})
        assert s.rooms() == ["a", "z"]

    def test_count_by_room(self):
        s = store()
        s.add("x", {"a": 1.0})
        s.add("x", {"a": 2.0})
        s.add("y", {"a": 3.0})
        assert s.count_by_room() == {"x": 2, "y": 1}

    def test_dataset_roundtrip(self):
        s = store()
        s.add("kitchen", {"1-1": 2.0}, 5.0)
        data = s.dataset()
        assert data.labels == ["kitchen"]
        assert data.fingerprints == [{"1-1": 2.0}]
        assert data.times == [5.0]

    def test_dataset_filtered_by_rooms(self):
        s = store()
        s.add("x", {"a": 1.0})
        s.add("y", {"a": 2.0})
        data = s.dataset(rooms=["x"])
        assert data.labels == ["x"]

    def test_clear(self):
        s = store()
        s.add("x", {"a": 1.0})
        assert s.clear() == 1
        assert len(s) == 0

    def test_reuses_existing_table(self):
        db = Database()
        first = FingerprintStore(db)
        first.add("x", {"a": 1.0})
        second = FingerprintStore(db)
        assert len(second) == 1
