"""Tests for occupant mobility models."""

import pytest

from repro.building.geometry import Point
from repro.building.mobility import (
    RandomWaypoint,
    RoomSchedule,
    StaticPosition,
    WaypointPath,
)
from repro.building.presets import test_house as make_test_house


class TestStaticPosition:
    def test_position_constant(self):
        model = StaticPosition(Point(2, 3))
        assert model.position_at(0.0) == Point(2, 3)
        assert model.position_at(1e6) == Point(2, 3)

    def test_speed_is_zero(self):
        assert StaticPosition(Point(0, 0)).speed_at(5.0) == 0.0


class TestWaypointPath:
    def test_requires_waypoints(self):
        with pytest.raises(ValueError):
            WaypointPath([])

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            WaypointPath([Point(0, 0)], speed_mps=0.0)

    def test_waits_at_start_before_start_time(self):
        path = WaypointPath([Point(0, 0), Point(10, 0)], speed_mps=1.0, start_time=5.0)
        assert path.position_at(0.0) == Point(0, 0)
        assert path.position_at(4.9) == Point(0, 0)

    def test_constant_speed_interpolation(self):
        path = WaypointPath([Point(0, 0), Point(10, 0)], speed_mps=2.0)
        assert path.position_at(2.5) == Point(5, 0)

    def test_stays_at_end(self):
        path = WaypointPath([Point(0, 0), Point(10, 0)], speed_mps=2.0)
        assert path.end_time == pytest.approx(5.0)
        assert path.position_at(100.0) == Point(10, 0)

    def test_multi_leg_path(self):
        path = WaypointPath([Point(0, 0), Point(4, 0), Point(4, 3)], speed_mps=1.0)
        assert path.position_at(4.0) == Point(4, 0)
        assert path.position_at(7.0) == Point(4, 3)
        assert path.end_time == pytest.approx(7.0)

    def test_speed_estimate_close_to_nominal(self):
        path = WaypointPath([Point(0, 0), Point(100, 0)], speed_mps=1.5)
        assert path.speed_at(10.0) == pytest.approx(1.5, rel=0.05)

    def test_single_waypoint_is_static(self):
        path = WaypointPath([Point(3, 3)])
        assert path.position_at(42.0) == Point(3, 3)


class TestRandomWaypoint:
    def test_deterministic_given_seed(self):
        plan = make_test_house()
        a = RandomWaypoint(plan, seed=5)
        b = RandomWaypoint(plan, seed=5)
        for t in (0.0, 10.0, 60.0, 300.0):
            assert a.position_at(t) == b.position_at(t)

    def test_different_seeds_diverge(self):
        plan = make_test_house()
        a = RandomWaypoint(plan, seed=5)
        b = RandomWaypoint(plan, seed=6)
        positions_a = [a.position_at(t) for t in (50.0, 100.0, 200.0)]
        positions_b = [b.position_at(t) for t in (50.0, 100.0, 200.0)]
        assert positions_a != positions_b

    def test_position_query_is_pure(self):
        """Querying out of order must not change the trajectory."""
        plan = make_test_house()
        model = RandomWaypoint(plan, seed=3)
        late = model.position_at(500.0)
        model.position_at(20.0)
        assert model.position_at(500.0) == late

    def test_stays_inside_building_bounds(self):
        plan = make_test_house()
        model = RandomWaypoint(plan, seed=7)
        x_min, y_min, x_max, y_max = plan.bounds()
        for t in range(0, 600, 10):
            p = model.position_at(float(t))
            assert x_min <= p.x <= x_max
            assert y_min <= p.y <= y_max

    def test_negative_time_clamped(self):
        plan = make_test_house()
        model = RandomWaypoint(plan, seed=3)
        assert model.position_at(-5.0) == model.position_at(0.0)

    def test_invalid_speed_range_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypoint(make_test_house(), speed_range_mps=(2.0, 1.0))

    def test_invalid_pause_range_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypoint(make_test_house(), pause_range_s=(-1.0, 5.0))

    def test_start_room_honoured(self):
        plan = make_test_house()
        model = RandomWaypoint(plan, seed=3, start_room="kitchen")
        assert plan.room_at(model.position_at(0.0)) == "kitchen"


class TestRoomSchedule:
    def test_rejects_empty_schedule(self):
        with pytest.raises(ValueError):
            RoomSchedule(make_test_house(), [])

    def test_rejects_unsorted_schedule(self):
        with pytest.raises(ValueError):
            RoomSchedule(make_test_house(), [(10.0, "living"), (5.0, "kitchen")])

    def test_first_entry_position(self):
        plan = make_test_house()
        sched = RoomSchedule(plan, [(0.0, "living"), (100.0, "kitchen")])
        assert plan.room_at(sched.position_at(0.0)) == "living"

    def test_walks_to_next_room_after_entry_time(self):
        plan = make_test_house()
        sched = RoomSchedule(plan, [(0.0, "living"), (100.0, "kitchen")], speed_mps=2.0)
        # Shortly after 100 s the occupant is between rooms or arrived.
        final = sched.position_at(150.0)
        assert plan.room_at(final) == "kitchen"

    def test_outside_entries(self):
        plan = make_test_house()
        sched = RoomSchedule(plan, [(0.0, "outside"), (50.0, "living")])
        assert sched.room_at(0.0) == "outside"

    def test_stays_at_last_entry(self):
        plan = make_test_house()
        sched = RoomSchedule(plan, [(0.0, "living")])
        assert plan.room_at(sched.position_at(1e5)) == "living"


class TestVectorisedPositions:
    """positions_at must be bit-identical to per-time position_at: the
    columnar fleet engine (repro.fleet.columnar) relies on it."""

    def test_random_waypoint_matches_scalar_exactly(self):
        plan = make_test_house()
        walk = RandomWaypoint(plan, seed=5)
        other = RandomWaypoint(plan, seed=5)
        times = [0.0, 3.7, 120.0, 1.1, 59.99, 0.05, 240.0, -2.0]
        vec = walk.positions_at(times)
        for i, t in enumerate(times):
            p = other.position_at(float(t))
            assert vec[i, 0] == p.x and vec[i, 1] == p.y

    def test_random_waypoint_vectorised_query_is_pure(self):
        plan = make_test_house()
        walk = RandomWaypoint(plan, seed=7)
        first = walk.positions_at([10.0, 20.0])
        # A far query extends the leg list; earlier answers must hold.
        walk.positions_at([500.0])
        again = walk.positions_at([10.0, 20.0])
        assert (first == again).all()

    def test_default_implementation_matches_scalar(self):
        path = WaypointPath([Point(0.0, 0.0), Point(10.0, 0.0)], speed_mps=2.0)
        times = [0.0, 1.25, 4.0, 10.0]
        vec = path.positions_at(times)
        for i, t in enumerate(times):
            p = path.position_at(t)
            assert vec[i, 0] == p.x and vec[i, 1] == p.y

    def test_empty_query(self):
        plan = make_test_house()
        walk = RandomWaypoint(plan, seed=1)
        assert walk.positions_at([]).shape == (0, 2)
