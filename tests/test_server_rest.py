"""Tests for the REST-like router."""

import pytest

from repro.obs import MemorySink, MetricsRegistry, TraceContext
from repro.server.rest import (
    HttpError,
    Request,
    Response,
    Router,
    TRACEPARENT_HEADER,
)


class TestRequest:
    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            Request("FETCH", "/x")

    def test_rejects_relative_path(self):
        with pytest.raises(ValueError):
            Request("GET", "x")

    def test_size_grows_with_body(self):
        small = Request("POST", "/x", body={"a": 1})
        large = Request("POST", "/x", body={"a": "y" * 500})
        assert large.size_bytes > small.size_bytes

    def test_size_without_body(self):
        assert Request("GET", "/x").size_bytes > 0


class TestResponse:
    def test_ok_for_2xx(self):
        assert Response(200).ok
        assert Response(204).ok

    def test_not_ok_otherwise(self):
        assert not Response(404).ok
        assert not Response(500).ok


class TestRouter:
    def make_router(self):
        router = Router()

        @router.route("GET", "/rooms/<room>")
        def get_room(request, params):
            return {"room": params["room"]}

        @router.route("POST", "/items")
        def post_item(request, params):
            if not request.body:
                raise HttpError(400, "missing body")
            return {"ok": True}

        return router

    def test_dispatch_matches_route(self):
        response = self.make_router().dispatch(Request("GET", "/rooms/kitchen"))
        assert response.status == 200
        assert response.body == {"room": "kitchen"}

    def test_param_extraction_stops_at_slash(self):
        response = self.make_router().dispatch(Request("GET", "/rooms/a/b"))
        assert response.status == 404

    def test_unknown_path_404(self):
        response = self.make_router().dispatch(Request("GET", "/nope"))
        assert response.status == 404

    def test_method_mismatch_405_names_allowed_methods(self):
        response = self.make_router().dispatch(Request("POST", "/rooms/kitchen"))
        assert response.status == 405
        assert "GET" in response.body["error"]
        assert response.body["allowed"] == ["GET"]

    def test_method_mismatch_405_on_static_route(self):
        response = self.make_router().dispatch(Request("GET", "/items"))
        assert response.status == 405
        assert response.body["allowed"] == ["POST"]

    def test_allowed_methods_merges_static_and_dynamic(self):
        router = self.make_router()

        @router.route("DELETE", "/rooms/<room>")
        def delete_room(request, params):
            return {}

        assert router.allowed_methods("/rooms/kitchen") == ["DELETE", "GET"]
        assert router.allowed_methods("/nope") == []

    def test_static_route_beats_regex_scan(self):
        """A placeholder-free route dispatches via the dict even when a
        dynamic pattern would also match the path."""
        router = Router()

        @router.route("GET", "/rooms/<room>")
        def get_room(request, params):
            return {"room": params["room"]}

        @router.route("GET", "/rooms/all")
        def get_all(request, params):
            return {"all": True}

        assert router.dispatch(Request("GET", "/rooms/all")).body == {"all": True}
        assert router.dispatch(Request("GET", "/rooms/lab")).body == {"room": "lab"}

    def test_first_registration_wins(self):
        router = Router()

        @router.route("GET", "/dup")
        def first(request, params):
            return {"which": "first"}

        @router.route("GET", "/dup")
        def second(request, params):
            return {"which": "second"}

        assert router.dispatch(Request("GET", "/dup")).body == {"which": "first"}

    def test_405_counts_towards_requests_handled(self):
        router = self.make_router()
        router.dispatch(Request("POST", "/rooms/kitchen"))
        assert router.requests_handled == 1

    def test_http_error_maps_to_status(self):
        response = self.make_router().dispatch(Request("POST", "/items"))
        assert response.status == 400
        assert "missing body" in response.body["error"]

    def test_handler_returning_response_passthrough(self):
        router = Router()

        @router.route("GET", "/custom")
        def custom(request, params):
            return Response(status=201, body={"made": True})

        assert router.dispatch(Request("GET", "/custom")).status == 201

    def test_request_counter_includes_404s(self):
        router = self.make_router()
        router.dispatch(Request("GET", "/rooms/a"))
        router.dispatch(Request("GET", "/rooms/b"))
        router.dispatch(Request("GET", "/missing"))
        assert router.requests_handled == 3

    def test_literal_dot_is_not_a_wildcard(self):
        """Regression: ``.`` in a route pattern must match only ``.``."""
        router = Router()

        @router.route("GET", "/metrics.json")
        def metrics(request, params):
            return {"ok": True}

        assert router.dispatch(Request("GET", "/metrics.json")).status == 200
        assert router.dispatch(Request("GET", "/metricsXjson")).status == 404

    def test_literal_metacharacters_survive_with_params(self):
        """Escaping applies to the literals around ``<param>`` holes."""
        router = Router()

        @router.route("GET", "/v1.0/rooms/<room>/stats+raw")
        def stats(request, params):
            return {"room": params["room"]}

        ok = router.dispatch(Request("GET", "/v1.0/rooms/lab/stats+raw"))
        assert ok.status == 200 and ok.body == {"room": "lab"}
        assert router.dispatch(Request("GET", "/v1X0/rooms/lab/statsraw")).status == 404

    def test_unexpected_handler_exception_maps_to_500(self):
        """Regression: a buggy handler must not crash the server."""
        router = Router()

        @router.route("GET", "/boom")
        def boom(request, params):
            raise KeyError("beacons")

        response = router.dispatch(Request("GET", "/boom"))
        assert response.status == 500
        assert "KeyError" in response.body["error"]
        assert router.requests_handled == 1


class TestRequestTracing:
    def test_headers_default_empty(self):
        assert Request("GET", "/x").headers == {}

    def test_headers_do_not_change_wire_size(self):
        """Trace headers are observability-only: identical energy/bytes."""
        bare = Request("POST", "/x", body={"a": 1})
        traced = Request(
            "POST",
            "/x",
            body={"a": 1},
            headers={TRACEPARENT_HEADER: "fleet-0;1"},
        )
        assert traced.size_bytes == bare.size_bytes

    def test_trace_context_decodes_header(self):
        request = Request(
            "GET", "/x", headers={TRACEPARENT_HEADER: "fleet-0;shard0:3"}
        )
        context = request.trace_context()
        assert context == TraceContext("fleet-0", "shard0:3")

    def test_trace_context_none_without_header(self):
        assert Request("GET", "/x").trace_context() is None

    def test_malformed_header_never_raises(self):
        request = Request(
            "GET", "/x", headers={TRACEPARENT_HEADER: "no-separator"}
        )
        assert request.trace_context() is None


class TestTracedRouter:
    def make_traced_router(self):
        registry = MetricsRegistry(sink=MemorySink())
        router = Router()
        router.tracer = registry.tracer

        @router.route("GET", "/rooms/<room>")
        def get_room(request, params):
            return {"room": params["room"]}

        return router, registry

    def test_dispatch_emits_server_request_span(self):
        router, registry = self.make_traced_router()
        router.dispatch(Request("GET", "/rooms/lab"))
        start, end = registry.sink.events
        assert start.name == "server.request"
        assert start.attrs["method"] == "GET"
        assert start.attrs["path"] == "/rooms/lab"
        assert end.attrs["status"] == 200

    def test_span_parented_by_traceparent_header(self):
        router, registry = self.make_traced_router()
        router.dispatch(
            Request(
                "GET",
                "/rooms/lab",
                headers={TRACEPARENT_HEADER: "fleet-0;shard1:7"},
            )
        )
        assert registry.sink.events[0].attrs["parent_id"] == "shard1:7"

    def test_error_status_recorded_on_span(self):
        router, registry = self.make_traced_router()
        router.dispatch(Request("GET", "/missing"))
        assert registry.sink.events[-1].attrs["status"] == 404

    def test_untraced_router_emits_nothing(self):
        registry = MetricsRegistry(sink=MemorySink())
        router = Router()
        router.dispatch(Request("GET", "/missing"))
        assert registry.sink.events == []
