"""Tests for rooms, walls, beacon placement and ground truth."""

import pytest

from repro.building.floorplan import (
    OUTSIDE,
    BeaconPlacement,
    FloorPlan,
    Room,
    Wall,
)
from repro.building.geometry import Point, Segment
from repro.building.presets import BUILDING_UUID, make_beacon


class TestRoom:
    def test_contains_interior(self):
        room = Room("a", 0, 0, 4, 3)
        assert room.contains(Point(2, 1))

    def test_contains_boundary(self):
        room = Room("a", 0, 0, 4, 3)
        assert room.contains(Point(0, 0))
        assert room.contains(Point(4, 3))

    def test_excludes_exterior(self):
        room = Room("a", 0, 0, 4, 3)
        assert not room.contains(Point(5, 1))

    def test_centre_and_area(self):
        room = Room("a", 0, 0, 4, 2)
        assert room.centre == Point(2, 1)
        assert room.area == 8.0

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Room("a", 0, 0, 0, 3)

    def test_rejects_reserved_name(self):
        with pytest.raises(ValueError):
            Room(OUTSIDE, 0, 0, 1, 1)


class TestWall:
    def test_rejects_unknown_material(self):
        with pytest.raises(ValueError):
            Wall(Segment(Point(0, 0), Point(1, 0)), material="unobtanium")


class TestBeaconPlacement:
    def test_beacon_id_from_major_minor(self):
        beacon = make_beacon(7, Point(1, 1), "a", major=2)
        assert beacon.beacon_id == "2-7"

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            BeaconPlacement(
                packet=make_beacon(1, Point(0, 0), "a").packet,
                position=Point(0, 0),
                room="a",
                advertising_interval_s=0.0,
            )


class TestFloorPlan:
    def make_plan(self):
        rooms = [Room("a", 0, 0, 4, 4), Room("b", 4, 0, 8, 4)]
        walls = [Wall(Segment(Point(4, 0), Point(4, 3)), "drywall")]
        return FloorPlan(rooms, walls)

    def test_duplicate_room_names_rejected(self):
        with pytest.raises(ValueError):
            FloorPlan([Room("a", 0, 0, 1, 1), Room("a", 2, 0, 3, 1)])

    def test_room_lookup(self):
        plan = self.make_plan()
        assert plan.room("a").name == "a"
        with pytest.raises(KeyError):
            plan.room("zzz")

    def test_room_at_interior(self):
        plan = self.make_plan()
        assert plan.room_at(Point(1, 1)) == "a"
        assert plan.room_at(Point(5, 1)) == "b"

    def test_room_at_outside(self):
        plan = self.make_plan()
        assert plan.room_at(Point(100, 100)) == OUTSIDE

    def test_labels_include_outside(self):
        plan = self.make_plan()
        assert plan.labels == ["a", "b", OUTSIDE]

    def test_add_beacon_unknown_room_rejected(self):
        plan = self.make_plan()
        with pytest.raises(ValueError):
            plan.add_beacon(make_beacon(1, Point(1, 1), "nope"))

    def test_add_duplicate_beacon_rejected(self):
        plan = self.make_plan()
        plan.add_beacon(make_beacon(1, Point(1, 1), "a"))
        with pytest.raises(ValueError):
            plan.add_beacon(make_beacon(1, Point(2, 2), "b"))

    def test_beacon_lookup(self):
        plan = self.make_plan()
        plan.add_beacon(make_beacon(3, Point(1, 1), "a"))
        assert plan.beacon("1-3").room == "a"
        with pytest.raises(KeyError):
            plan.beacon("9-9")

    def test_walls_crossed_through_divider(self):
        plan = self.make_plan()
        assert plan.walls_crossed((1, 1), (7, 1)) == ["drywall"]

    def test_walls_crossed_through_doorway(self):
        plan = self.make_plan()
        # The divider stops at y=3; pass above it.
        assert plan.walls_crossed((1, 3.5), (7, 3.5)) == []

    def test_walls_crossed_same_room(self):
        plan = self.make_plan()
        assert plan.walls_crossed((1, 1), (2, 2)) == []

    def test_bounds(self):
        assert self.make_plan().bounds() == (0, 0, 8, 4)

    def test_bounds_empty_plan_raises(self):
        with pytest.raises(ValueError):
            FloorPlan([]).bounds()

    def test_repr_mentions_rooms(self):
        assert "a" in repr(self.make_plan())
