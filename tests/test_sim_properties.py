"""Property-based tests for the simulation engine and RNG streams."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams, derive_seed


class TestEngineProperties:
    @given(
        times=st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=40)
    )
    def test_events_always_execute_in_time_order(self, times):
        sim = Simulator()
        executed = []
        for t in times:
            sim.schedule_at(t, lambda s: executed.append(s.now))
        sim.run()
        assert executed == sorted(executed)
        assert len(executed) == len(times)

    @given(
        times=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30),
        cutoff=st.floats(0.0, 100.0),
    )
    def test_run_until_is_a_clean_partition(self, times, cutoff):
        """run(until=c) then run() must execute exactly the same events
        as one run(), in the same order."""
        full_sim = Simulator()
        full_order = []
        for t in times:
            full_sim.schedule_at(t, lambda s: full_order.append(s.now))
        full_sim.run()

        split_sim = Simulator()
        split_order = []
        for t in times:
            split_sim.schedule_at(t, lambda s: split_order.append(s.now))
        split_sim.run(until=cutoff)
        assert all(t <= cutoff for t in split_order)
        split_sim.run()
        assert split_order == full_order

    @given(period=st.floats(0.1, 10.0), until=st.floats(0.0, 50.0))
    def test_every_fires_expected_count(self, period, until):
        sim = Simulator()
        hits = []
        sim.every(period, lambda s: hits.append(s.now), until=until)
        sim.run()
        expected = int(until / period + 1e-9)
        assert abs(len(hits) - expected) <= 1  # float boundary slack


class TestRngProperties:
    @given(seed=st.integers(0, 2**31), name=st.text(min_size=1, max_size=20))
    def test_derive_seed_stable(self, seed, name):
        assert derive_seed(seed, name) == derive_seed(seed, name)

    @given(
        seed=st.integers(0, 2**31),
        a=st.text(min_size=1, max_size=10),
        b=st.text(min_size=1, max_size=10),
    )
    def test_distinct_names_rarely_collide(self, seed, a, b):
        if a != b:
            # SHA-256 collisions on 64 bits would be astonishing here.
            assert derive_seed(seed, a) != derive_seed(seed, b)

    @given(seed=st.integers(0, 2**31))
    def test_spawn_differs_from_parent_streams(self, seed):
        parent = RngStreams(seed)
        child = parent.spawn("x")
        assert parent.get("s").random(3).tolist() != child.get("s").random(3).tolist()
