"""Tests for fast-fading models."""

import numpy as np
import pytest

from repro.radio.fading import RayleighFading, RicianFading


class TestRician:
    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            RicianFading(k_factor=-1.0)

    def test_scalar_sample(self, rng):
        value = RicianFading(6.0).sample_db(rng)
        assert isinstance(value, float)

    def test_vector_sample_shape(self, rng):
        values = RicianFading(6.0).sample_db(rng, size=1000)
        assert values.shape == (1000,)

    def test_unit_mean_power(self, rng):
        """E[|h|^2] = 1, so mean linear power should be ~1 (0 dB)."""
        db = RicianFading(6.0).sample_db(rng, size=20000)
        mean_power = np.mean(10.0 ** (db / 10.0))
        assert mean_power == pytest.approx(1.0, rel=0.05)

    def test_higher_k_means_less_variance(self, rng):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        calm = RicianFading(20.0).sample_db(rng_a, size=5000)
        wild = RicianFading(0.5).sample_db(rng_b, size=5000)
        assert np.std(calm) < np.std(wild)

    def test_deterministic_given_rng(self):
        a = RicianFading(6.0).sample_db(np.random.default_rng(5), size=10)
        b = RicianFading(6.0).sample_db(np.random.default_rng(5), size=10)
        np.testing.assert_array_equal(a, b)


class TestRayleigh:
    def test_matches_k_zero_rician_statistics(self):
        ray = RayleighFading().sample_db(np.random.default_rng(1), size=5000)
        ric = RicianFading(0.0).sample_db(np.random.default_rng(1), size=5000)
        np.testing.assert_allclose(ray, ric)

    def test_heavier_tail_than_rician(self):
        ray = RayleighFading().sample_db(np.random.default_rng(2), size=5000)
        ric = RicianFading(10.0).sample_db(np.random.default_rng(2), size=5000)
        # Deep fades (below -10 dB) are common for Rayleigh, rare with
        # a strong LoS.
        assert np.mean(ray < -10.0) > np.mean(ric < -10.0)
