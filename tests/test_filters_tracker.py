"""Tests for the per-beacon tracker and the paper's loss policy."""

import pytest
from hypothesis import given, strategies as st

from repro.filters.ewma import EwmaFilter
from repro.filters.base import RawFilter
from repro.filters.tracker import (
    PAPER_MAX_CONSECUTIVE_LOSSES,
    BeaconTracker,
    paper_filter_bank,
)


class TestBasicTracking:
    def test_new_beacon_appears(self):
        tracker = BeaconTracker()
        estimates = tracker.update({"1-1": -60.0})
        assert estimates["1-1"].value == -60.0
        assert not estimates["1-1"].held

    def test_each_beacon_gets_own_filter(self):
        tracker = BeaconTracker(prototype=EwmaFilter(0.5))
        tracker.update({"a": 0.0, "b": 100.0})
        estimates = tracker.update({"a": 10.0, "b": 110.0})
        assert estimates["a"].value == pytest.approx(5.0)
        assert estimates["b"].value == pytest.approx(105.0)

    def test_live_beacons_sorted(self):
        tracker = BeaconTracker()
        tracker.update({"b": 1.0, "a": 2.0})
        assert tracker.live_beacons == ["a", "b"]

    def test_reset_clears(self):
        tracker = BeaconTracker()
        tracker.update({"a": 1.0})
        tracker.reset()
        assert tracker.live_beacons == []


class TestPaperLossPolicy:
    """Section V: remove only after the second consecutive loss."""

    def test_value_held_through_single_loss(self):
        tracker = paper_filter_bank()
        tracker.update({"1-1": -60.0})
        estimates = tracker.update({})
        assert estimates["1-1"].value == -60.0
        assert estimates["1-1"].held
        assert estimates["1-1"].consecutive_losses == 1

    def test_evicted_after_second_consecutive_loss(self):
        tracker = paper_filter_bank()
        tracker.update({"1-1": -60.0})
        tracker.update({})
        estimates = tracker.update({})
        assert estimates == {}

    def test_reappearance_resets_loss_counter(self):
        tracker = paper_filter_bank()
        tracker.update({"1-1": -60.0})
        tracker.update({})  # loss 1
        tracker.update({"1-1": -62.0})  # seen again
        estimates = tracker.update({})  # loss 1 again, still held
        assert "1-1" in estimates
        assert estimates["1-1"].consecutive_losses == 1

    def test_paper_threshold_is_two(self):
        assert PAPER_MAX_CONSECUTIVE_LOSSES == 2

    def test_custom_threshold(self):
        tracker = BeaconTracker(max_consecutive_losses=3)
        tracker.update({"a": 1.0})
        tracker.update({})
        tracker.update({})
        assert "a" in tracker.estimates()
        tracker.update({})
        assert tracker.estimates() == {}

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            BeaconTracker(max_consecutive_losses=0)

    def test_loss_does_not_advance_filter_state(self):
        """A held value must be the last filtered value, unchanged."""
        tracker = BeaconTracker(prototype=EwmaFilter(0.5))
        tracker.update({"a": 10.0})
        tracker.update({"a": 20.0})  # filtered: 15
        held = tracker.update({})["a"].value
        assert held == pytest.approx(15.0)
        # On reappearance the filter continues from 15.
        back = tracker.update({"a": 25.0})["a"].value
        assert back == pytest.approx(20.0)


class TestIndependence:
    def test_loss_of_one_beacon_does_not_affect_other(self):
        tracker = paper_filter_bank()
        tracker.update({"a": 1.0, "b": 2.0})
        tracker.update({"a": 1.0})
        tracker.update({"a": 1.0})
        estimates = tracker.estimates()
        assert "a" in estimates
        assert "b" not in estimates

    @given(
        streams=st.lists(
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]), st.floats(-100, 0), max_size=3
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_live_beacons_were_seen_recently(self, streams):
        """Invariant: every live beacon was measured within the last
        max_consecutive_losses cycles."""
        tracker = BeaconTracker(prototype=RawFilter(), max_consecutive_losses=2)
        history = []
        for measurements in streams:
            history.append(set(measurements))
            tracker.update(measurements)
            recent = set().union(*history[-2:])
            assert set(tracker.live_beacons) <= recent


class TestEvictionEdgeCases:
    def test_single_loss_evicts_with_threshold_one(self):
        """max_consecutive_losses=1: no hold-through at all — the very
        first missed scan evicts the beacon."""
        tracker = BeaconTracker(max_consecutive_losses=1)
        tracker.update({"1-1": -60.0})
        assert tracker.update({}) == {}
        assert tracker.live_beacons == []

    def test_threshold_one_never_reports_held_values(self):
        tracker = BeaconTracker(max_consecutive_losses=1)
        for _ in range(3):
            estimates = tracker.update({"1-1": -60.0})
            assert not estimates["1-1"].held
            assert tracker.update({}) == {}

    def test_reappearance_on_the_would_be_eviction_scan(self):
        """A beacon seen again on exactly the scan that would evict it
        must survive with its loss counter reset."""
        tracker = BeaconTracker(prototype=RawFilter(), max_consecutive_losses=2)
        tracker.update({"1-1": -60.0})
        tracker.update({})  # loss 1 of 2: held
        estimates = tracker.update({"1-1": -50.0})  # would-be eviction scan
        assert estimates["1-1"].consecutive_losses == 0
        assert not estimates["1-1"].held
        assert estimates["1-1"].value == -50.0
        # The reprieve is complete: the full loss budget is available.
        assert tracker.update({})["1-1"].held
        assert tracker.update({}) == {}

    def test_loss_recover_loss_sequence_estimates(self):
        """held/consecutive_losses across loss -> recover -> loss."""
        tracker = BeaconTracker(prototype=RawFilter(), max_consecutive_losses=3)
        tracker.update({"1-1": -60.0})

        lost_once = tracker.update({})["1-1"]
        assert (lost_once.consecutive_losses, lost_once.held) == (1, True)
        assert lost_once.value == -60.0

        recovered = tracker.update({"1-1": -40.0})["1-1"]
        assert (recovered.consecutive_losses, recovered.held) == (0, False)
        assert recovered.value == -40.0

        lost_again = tracker.update({})["1-1"]
        assert (lost_again.consecutive_losses, lost_again.held) == (1, True)
        assert lost_again.value == -40.0

        lost_twice = tracker.update({})["1-1"]
        assert (lost_twice.consecutive_losses, lost_twice.held) == (2, True)

        assert tracker.update({}) == {}  # third consecutive loss evicts

    def test_estimates_view_is_consistent_between_updates(self):
        tracker = BeaconTracker(prototype=RawFilter(), max_consecutive_losses=2)
        tracker.update({"a": 1.0, "b": 2.0})
        tracker.update({"a": 3.0})
        estimates = tracker.estimates()
        assert estimates["a"].consecutive_losses == 0
        assert estimates["b"].consecutive_losses == 1
        assert estimates["b"].held and not estimates["a"].held
