"""Tests for the occupancy history."""

import pytest

from repro.server.history import OccupancyHistory


def filled_history():
    history = OccupancyHistory()
    history.record(0.0, {"kitchen": 1, "living": 0})
    history.record(10.0, {"kitchen": 2, "living": 1})
    history.record(20.0, {"kitchen": 0, "living": 1})
    history.record(30.0, {"kitchen": 0, "living": 0})
    return history


class TestRecording:
    def test_length_and_span(self):
        history = filled_history()
        assert len(history) == 4
        assert history.span_s == 30.0

    def test_out_of_order_rejected(self):
        history = filled_history()
        with pytest.raises(ValueError):
            history.record(5.0, {})

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            OccupancyHistory().record(0.0, {"kitchen": -1})

    def test_equal_timestamps_allowed(self):
        history = OccupancyHistory()
        history.record(1.0, {"a": 1})
        history.record(1.0, {"a": 2})
        assert len(history) == 2


class TestQueries:
    def test_series(self):
        history = filled_history()
        assert history.series("kitchen") == [(0.0, 1), (10.0, 2), (20.0, 0), (30.0, 0)]

    def test_series_missing_room_is_zero(self):
        history = filled_history()
        assert history.series("attic") == [(0.0, 0), (10.0, 0), (20.0, 0), (30.0, 0)]

    def test_rooms(self):
        assert filled_history().rooms() == ["kitchen", "living"]

    def test_peak(self):
        history = filled_history()
        assert history.peak("kitchen") == 2
        assert history.peak("attic") == 0

    def test_mean_occupancy_time_weighted(self):
        history = filled_history()
        # kitchen: 1 for 10 s, 2 for 10 s, 0 for 10 s -> mean 1.0.
        assert history.mean_occupancy("kitchen") == pytest.approx(1.0)

    def test_utilisation(self):
        history = filled_history()
        # kitchen occupied during [0, 20) of 30 s.
        assert history.utilisation("kitchen") == pytest.approx(2.0 / 3.0)
        # living occupied during [10, 30) of 30 s.
        assert history.utilisation("living") == pytest.approx(2.0 / 3.0)

    def test_busiest_room(self):
        assert filled_history().busiest_room() == "kitchen"

    def test_busiest_room_empty(self):
        assert OccupancyHistory().busiest_room() is None

    def test_empty_history_stats(self):
        history = OccupancyHistory()
        assert history.span_s == 0.0
        assert history.mean_occupancy("x") == 0.0
        assert history.utilisation("x") == 0.0

    def test_between(self):
        sub = filled_history().between(5.0, 25.0)
        assert len(sub) == 2
        assert sub.series("kitchen") == [(10.0, 2), (20.0, 0)]


class TestBmsIntegration:
    def test_record_history_via_bms(self):
        from tests.test_server_bms import trained_bms

        bms = trained_bms()
        bms.ingest_sighting("alice", {"1-1": 1.0, "1-2": 8.0}, 10.0)
        bms.record_history(10.0)
        bms.ingest_sighting("alice", {"1-1": 8.0, "1-2": 1.0}, 12.0)
        bms.record_history(12.0)
        assert bms.history.series("kitchen") == [(10.0, 1), (12.0, 0)]

    def test_history_rest_route(self):
        from repro.server.rest import Request
        from tests.test_server_bms import trained_bms

        bms = trained_bms()
        bms.ingest_sighting("alice", {"1-1": 1.0, "1-2": 8.0}, 10.0)
        bms.record_history(10.0)
        bms.record_history(20.0)
        response = bms.router.dispatch(Request("GET", "/history/kitchen"))
        assert response.ok
        assert response.body["peak"] == 1
        assert response.body["utilisation"] > 0.0
