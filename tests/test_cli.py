"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_only_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--only", "99"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.building == "test_house"
        assert args.classifier == "svm"
        assert args.uplink == "bluetooth"

    def test_trace_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_unknown_building_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--building", "atlantis"])


class TestCommands:
    def test_figures_single(self, capsys):
        assert main(["figures", "--only", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--device", "s3_mini"]) == 0
        out = capsys.readouterr().out
        assert "converged" in out

    def test_trace_jsonl(self, tmp_path, capsys):
        out_file = tmp_path / "trace.jsonl"
        assert main([
            "trace", "--scenario", "static", "--duration", "20",
            str(out_file),
        ]) == 0
        assert out_file.exists()
        from repro.traces import read_trace_jsonl

        trace = read_trace_jsonl(out_file)
        assert len(trace) == 10

    def test_trace_csv(self, tmp_path):
        out_file = tmp_path / "trace.csv"
        assert main([
            "trace", "--scenario", "static", "--duration", "20",
            "--format", "csv", str(out_file),
        ]) == 0
        assert out_file.read_text().startswith("time,")

    def test_simulate_small(self, capsys):
        assert main([
            "simulate", "--building", "two_room_corridor",
            "--duration", "60", "--classifier", "knn", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "occupant-1" in out
