"""Tests for multinomial logistic regression."""

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegression


def blobs(rng, centers, n_per=40, spread=0.5):
    X = np.vstack([rng.normal(c, spread, size=(n_per, len(c))) for c in centers])
    y = np.array(
        sum([["c%d" % i] * n_per for i in range(len(centers))], [])
    )
    return X, y


class TestFit:
    def test_separable_two_class(self):
        rng = np.random.default_rng(0)
        X, y = blobs(rng, [(0, 0), (4, 0)])
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.98

    def test_three_class(self):
        rng = np.random.default_rng(1)
        X, y = blobs(rng, [(0, 0), (4, 0), (0, 4)])
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_generalises(self):
        rng = np.random.default_rng(2)
        X, y = blobs(rng, [(0, 0), (4, 0)], n_per=60)
        Xt, yt = blobs(rng, [(0, 0), (4, 0)], n_per=20)
        model = LogisticRegression().fit(X, y)
        assert model.score(Xt, yt) > 0.95

    def test_early_stopping_records_iterations(self):
        rng = np.random.default_rng(3)
        X, y = blobs(rng, [(0, 0), (8, 0)], spread=0.2)
        model = LogisticRegression(tol=1e-2).fit(X, y)
        assert 1 <= model.n_iter_ <= model.max_iter

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((5, 2)), ["a"] * 5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((5, 2)), ["a", "b"])


class TestPredict:
    def test_proba_rows_sum_to_one(self):
        rng = np.random.default_rng(4)
        X, y = blobs(rng, [(0, 0), (4, 0), (0, 4)])
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(proba >= 0.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.ones((1, 2)))

    def test_1d_input_promoted(self):
        rng = np.random.default_rng(5)
        X, y = blobs(rng, [(0, 0), (4, 0)])
        model = LogisticRegression().fit(X, y)
        assert model.predict(np.array([4.0, 0.0])).shape == (1,)

    def test_confident_far_from_boundary(self):
        rng = np.random.default_rng(6)
        X, y = blobs(rng, [(0, 0), (6, 0)], spread=0.3)
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(np.array([[6.0, 0.0]]))
        assert proba.max() > 0.95


class TestRegularisation:
    def test_l2_shrinks_weights(self):
        rng = np.random.default_rng(7)
        X, y = blobs(rng, [(0, 0), (3, 0)])
        loose = LogisticRegression(l2=0.0, max_iter=500).fit(X, y)
        tight = LogisticRegression(l2=1.0, max_iter=500).fit(X, y)
        assert np.abs(tight._weights).sum() < np.abs(loose._weights).sum()

    @pytest.mark.parametrize(
        "kwargs",
        [{"learning_rate": 0.0}, {"l2": -1.0}, {"max_iter": 0}],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LogisticRegression(**kwargs)

    def test_clone(self):
        model = LogisticRegression(learning_rate=0.1, l2=0.5)
        clone = model.clone()
        assert clone.learning_rate == 0.1 and clone.l2 == 0.5
