"""Columnar fleet drive: byte-identical to the scalar event loop.

The struct-of-arrays engine (:mod:`repro.fleet.columnar`) promises
*bit*-equivalence with :meth:`OccupancyDetectionSystem.run` — same
DetectionRun, same reports, same region-event sequences, same telemetry
aggregates — across platforms, fleet sizes and seeds.  These tests pin
that contract the way ``test_radio_channel`` pins ``link_budget_many``:
by running both engines from identical initial states and comparing
exact floats, never approximations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.building.mobility import RandomWaypoint
from repro.building.occupant import Occupant
from repro.building.presets import two_room_corridor
from repro.core.config import SystemConfig
from repro.core.system import OccupancyDetectionSystem
from repro.fleet import FleetLoadGenerator
from repro.fleet.columnar import (
    ColumnarFleetDrive,
    ColumnarUnsupported,
    run_columnar,
)
from repro.ibeacon.region import RegionEventKind
from repro.obs.metrics import MetricsRegistry
from repro.sim.rng import derive_seed

#: Counter aggregates inside the equivalence contract (the ``sim.*``
#: engine metrics are scalar-path-only by design).
CONTRACT_COUNTERS = (
    "phone.scan_cycles",
    "phone.adverts_received",
    "phone.samples_surfaced",
    "phone.samples_filtered",
    "phone.decode_drops",
    "server.sightings",
    "server.classifications",
    "server.batches",
    "server.expired_devices",
    "server.confusion",
    "energy.joules",
)


def build_system(platform="android", devices=2, seed=0, **config_kwargs):
    plan = two_room_corridor()
    config = SystemConfig(
        seed=seed,
        platform=platform,
        uplink_batch_size=config_kwargs.pop("uplink_batch_size", 4),
        **config_kwargs,
    )
    system = OccupancyDetectionSystem(plan, config, registry=MetricsRegistry())
    system.calibrate(duration_s=60.0)
    system.train()
    for i in range(devices):
        mobility = RandomWaypoint(plan, seed=derive_seed(seed, f"fleet:{i}"))
        system.add_occupant(Occupant(f"dev-{i:04d}", mobility))
    return system


def counter_state(system):
    out = {}
    for name in CONTRACT_COUNTERS:
        counter = system.obs.counter(name)
        out[name] = (
            counter.value,
            tuple(sorted((str(k), v) for k, v in counter.series.items())),
        )
    return out


def assert_equivalent(scalar_system, columnar_system, run_a, run_b):
    """Byte-for-byte comparison of everything in the contract."""
    # DetectionRun: repr equality on floats means bit equality (repr of
    # a float is shortest-roundtrip), and predictions are tuples of
    # floats and strings compared exactly.
    assert repr(run_a.accuracy) == repr(run_b.accuracy)
    assert run_a.predictions == run_b.predictions
    if run_a.confusion is not None or run_b.confusion is not None:
        assert repr(vars(run_a.confusion)) == repr(vars(run_b.confusion))
    assert set(run_a.energy) == set(run_b.energy)
    for name in run_a.energy:
        assert repr(run_a.energy[name]) == repr(run_b.energy[name])
        assert repr(run_a.delivery[name]) == repr(run_b.delivery[name])
    # App facades: reports, region events, state machine, caches.
    for rt_a, rt_b in zip(
        scalar_system._runtimes.values(), columnar_system._runtimes.values()
    ):
        app_a, app_b = rt_a.phone.app, rt_b.phone.app
        assert app_a.reports == app_b.reports
        assert app_a.region_events == app_b.region_events
        assert app_a.state == app_b.state
        assert app_a._tx_power_by_beacon == app_b._tx_power_by_beacon
        assert sorted(app_a.tracker._filters) == sorted(app_b.tracker._filters)
        for bid, filt in app_a.tracker._filters.items():
            assert repr(filt.value) == repr(app_b.tracker._filters[bid].value)
        assert app_a.tracker._losses == app_b.tracker._losses
    # Server state and telemetry aggregates.
    assert repr(scalar_system.bms.history._entries) == repr(
        columnar_system.bms.history._entries
    )
    assert counter_state(scalar_system) == counter_state(columnar_system)


def run_both(platform, devices, duration, seed, **config_kwargs):
    scalar = build_system(platform, devices, seed, **config_kwargs)
    columnar = build_system(platform, devices, seed, **config_kwargs)
    run_a = scalar.run(duration)
    run_b = run_columnar(columnar, duration)
    assert_equivalent(scalar, columnar, run_a, run_b)
    return scalar, columnar, run_a, run_b


class TestColumnarEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(
        platform=st.sampled_from(["android", "ios"]),
        devices=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
        duration=st.sampled_from([6.0, 14.0, 21.0]),
    )
    def test_property_reports_and_events_identical(
        self, platform, devices, seed, duration
    ):
        """For random platforms, fleet sizes, seeds and durations the
        two engines produce identical FleetReport ingredients, region
        events and telemetry — including held/evicted beacon edges hit
        naturally by the random trajectories."""
        run_both(platform, devices, duration, seed)

    def test_android_fleet(self):
        run_both("android", 3, 30.0, seed=1)

    def test_ios_fleet(self):
        run_both("ios", 2, 20.0, seed=2)

    def test_held_and_evicted_beacons(self):
        """A scripted walk-away hits the hold-then-evict path: beacons
        are held through the first missed scan and evicted on the
        second, triggering a region EXIT in both engines alike."""
        from repro.building.mobility import WaypointPath
        from repro.building.geometry import Point

        def build(seed=5):
            system = build_system("android", 0, seed)
            path = WaypointPath(
                [Point(6.0, 1.5), Point(5000.0, 1.5)],
                speed_mps=800.0,
                start_time=6.0,
            )
            system.add_occupant(Occupant("dev-0000", path))
            return system

        scalar, columnar = build(), build()
        run_a = scalar.run(30.0)
        run_b = run_columnar(columnar, 30.0)
        assert_equivalent(scalar, columnar, run_a, run_b)
        kinds = [
            e.kind
            for rt in scalar._runtimes.values()
            for e in rt.phone.app.region_events
        ]
        assert RegionEventKind.ENTER in kinds
        assert RegionEventKind.EXIT in kinds
        # At least one report carried a held (lost-but-not-evicted)
        # estimate on the way out.
        reports = [
            r
            for rt in scalar._runtimes.values()
            for r in rt.phone.app.reports
        ]
        assert any(b.held for r in reports for b in r.beacons)

    def test_fractional_final_cycle(self):
        """Durations that are not a multiple of the scan period drop
        the trailing fraction in both engines alike."""
        run_both("android", 1, 7.0, seed=3)

    def test_sub_period_duration_runs_nothing(self):
        scalar, columnar, run_a, run_b = run_both("ios", 1, 0.5, seed=4)
        assert run_a.predictions == {"dev-0000": []}
        assert np.isnan(run_b.accuracy)

    def test_unbatched_uplink(self):
        run_both("android", 2, 20.0, seed=6, uplink_batch_size=1)

    def test_mirrored_state_supports_reinspection(self):
        """After a columnar run the scalar facades hold the authentic
        end state: a fresh drive rebuilt from them validates cleanly
        (``ColumnarFleetDrive`` re-reads app/tracker state)."""
        _, columnar, _, _ = run_both("android", 2, 20.0, seed=7)
        drive = ColumnarFleetDrive(columnar)
        assert drive.live.any() or not any(
            rt.phone.app.tracker.live_beacons
            for rt in columnar._runtimes.values()
        )


class TestColumnarLoadgen:
    def make(self, **kwargs):
        defaults = dict(
            devices=2,
            duration_s=30.0,
            batch_size=4,
            batch_delay_s=8.0,
            calibration_s=120.0,
            seed=1,
            plan=two_room_corridor(),
        )
        defaults.update(kwargs)
        return FleetLoadGenerator(**defaults)

    def test_fleet_report_identical(self):
        assert self.make(columnar=True).run() == self.make().run()

    def test_sharded_columnar_identical_to_sharded_scalar(self):
        scalar = self.make(devices=4, shards=2).run()
        columnar = self.make(devices=4, shards=2, columnar=True).run()
        assert columnar == scalar

    def test_fleet_gauges_published(self):
        registry = MetricsRegistry()
        report = self.make(columnar=True, registry=registry).run()
        assert registry.gauge("fleet.devices").value == 2.0
        assert registry.gauge("fleet.throughput_rps").value == pytest.approx(
            report.throughput_rps
        )

    def test_profiled_columnar_report_unchanged(self):
        plain = self.make(columnar=True).run()
        profiled = self.make(columnar=True, profile=True).run()
        assert profiled == plain  # profile field excluded from compare
        assert profiled.profile is not None
        assert "fleet.columnar_drive" in profiled.profile["counts"]


class TestColumnarGuards:
    def test_accel_gating_unsupported(self):
        system = build_system("android", 1, seed=0, accel_gating=True)
        with pytest.raises(ColumnarUnsupported):
            ColumnarFleetDrive(system)

    def test_foreign_scanner_unsupported(self):
        system = build_system("android", 1, seed=0)
        rt = next(iter(system._runtimes.values()))

        class OddScanner(type(rt.phone.scanner)):
            pass

        rt.phone.scanner.__class__ = OddScanner
        with pytest.raises(ColumnarUnsupported):
            ColumnarFleetDrive(system)

    def test_non_ewma_tracker_unsupported(self):
        from repro.filters.moving_average import MovingAverageFilter

        system = build_system("android", 1, seed=0)
        rt = next(iter(system._runtimes.values()))
        rt.phone.app.tracker.prototype = MovingAverageFilter(3)
        with pytest.raises(ColumnarUnsupported):
            ColumnarFleetDrive(system)

    def test_unbooted_app_rejected(self):
        from repro.phone.app import AppState

        system = build_system("android", 1, seed=0)
        rt = next(iter(system._runtimes.values()))
        rt.phone.app.state = AppState.OFF
        with pytest.raises(RuntimeError):
            ColumnarFleetDrive(system)

    def test_no_occupants_rejected(self):
        plan = two_room_corridor()
        system = OccupancyDetectionSystem(plan, SystemConfig(seed=0))
        system.calibrate(duration_s=60.0)
        system.train()
        with pytest.raises(RuntimeError):
            run_columnar(system, 10.0)
