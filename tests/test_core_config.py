"""Tests for the system configuration."""

import pytest

from repro.core.config import SystemConfig


class TestDefaults:
    def test_defaults_match_paper(self):
        config = SystemConfig()
        assert config.platform == "android"
        assert config.device == "s3_mini"
        assert config.scan_period_s == 2.0
        assert config.filter_coefficient == 0.65
        assert config.max_consecutive_losses == 2
        assert config.classifier == "svm"
        assert config.feature == "distance"

    def test_frozen(self):
        with pytest.raises(Exception):
            SystemConfig().platform = "ios"


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"platform": "windows_phone"},
            {"scan_period_s": 0.0},
            {"filter_coefficient": 1.0},
            {"filter_coefficient": -0.1},
            {"feature": "magnetometer"},
            {"classifier": "decision_tree"},
            {"uplink": "zigbee"},
            {"path_loss_exponent": 0.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SystemConfig(**kwargs)

    def test_accepts_all_classifiers(self):
        for name in ("svm", "knn", "naive_bayes", "proximity"):
            assert SystemConfig(classifier=name).classifier == name

    def test_accepts_both_uplinks(self):
        for name in ("wifi", "bluetooth"):
            assert SystemConfig(uplink=name).uplink == name
