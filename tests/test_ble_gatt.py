"""Tests for the GATT layer and the relay board service."""

import json
import uuid

import pytest

from repro.ble.gatt import (
    Characteristic,
    CharacteristicProperty,
    GattClient,
    GattError,
    GattServer,
    Service,
)
from repro.beacon_node.relay import (
    RELAY_REPORT_CHAR_UUID,
    RELAY_SERVICE_UUID,
    RELAY_STATUS_CHAR_UUID,
    RelayBoardService,
    write_report_via_gatt,
)
from repro.phone.app import RangedBeacon, SightingReport
from repro.server.rest import Router

SVC = uuid.UUID("0000aaaa-0000-1000-8000-00805f9b34fb")
CHR = uuid.UUID("0000bbbb-0000-1000-8000-00805f9b34fb")


def simple_server(properties=CharacteristicProperty.READ | CharacteristicProperty.WRITE):
    server = GattServer()
    characteristic = Characteristic(uuid=CHR, properties=properties, value=b"init")
    server.add_service(Service(uuid=SVC, characteristics=[characteristic]))
    return server, characteristic


class TestGattServer:
    def test_handles_assigned_sequentially(self):
        server, characteristic = simple_server()
        assert server.services[0].handle == 1
        assert characteristic.handle == 2

    def test_read_write_roundtrip(self):
        server, characteristic = simple_server()
        server.write(characteristic.handle, b"hello")
        assert server.read(characteristic.handle) == b"hello"

    def test_read_requires_read_property(self):
        server, characteristic = simple_server(CharacteristicProperty.WRITE)
        with pytest.raises(GattError):
            server.read(characteristic.handle)

    def test_write_requires_write_property(self):
        server, characteristic = simple_server(CharacteristicProperty.READ)
        with pytest.raises(GattError):
            server.write(characteristic.handle, b"x")

    def test_invalid_handle(self):
        server, _ = simple_server()
        with pytest.raises(GattError):
            server.read(0x99)

    def test_value_length_limited(self):
        server, characteristic = simple_server()
        with pytest.raises(GattError):
            server.write(characteristic.handle, b"\x00" * 513)

    def test_on_write_hook_called(self):
        seen = []
        server = GattServer()
        characteristic = Characteristic(
            uuid=CHR, properties=CharacteristicProperty.WRITE, on_write=seen.append
        )
        server.add_service(Service(uuid=SVC, characteristics=[characteristic]))
        server.write(characteristic.handle, b"payload")
        assert seen == [b"payload"]

    def test_notify_reaches_subscribers(self):
        server, _ = simple_server()
        notifying = Characteristic(
            uuid=uuid.uuid4(), properties=CharacteristicProperty.NOTIFY
        )
        server.add_service(Service(uuid=uuid.uuid4(), characteristics=[notifying]))
        received = []
        server.subscribe(notifying.handle, received.append)
        count = server.notify(notifying.handle, b"ping")
        assert count == 1
        assert received == [b"ping"]

    def test_subscribe_requires_notify_property(self):
        server, characteristic = simple_server()
        with pytest.raises(GattError):
            server.subscribe(characteristic.handle, lambda v: None)

    def test_find_service_by_string_uuid(self):
        server, _ = simple_server()
        assert server.find_service(str(SVC)) is not None
        assert server.find_service(uuid.uuid4()) is None


class TestGattClient:
    def test_discovery_and_read(self):
        server, characteristic = simple_server()
        client = GattClient(server)
        services = client.discover_services()
        assert len(services) == 1
        found = client.find_characteristic(SVC, CHR)
        assert client.read(found.handle) == b"init"

    def test_unknown_service_raises(self):
        server, _ = simple_server()
        with pytest.raises(GattError):
            GattClient(server).find_characteristic(uuid.uuid4(), CHR)

    def test_unknown_characteristic_raises(self):
        server, _ = simple_server()
        with pytest.raises(GattError):
            GattClient(server).find_characteristic(SVC, uuid.uuid4())

    def test_disconnected_client_fails(self):
        server, characteristic = simple_server()
        client = GattClient(server)
        client.disconnect()
        with pytest.raises(GattError):
            client.read(characteristic.handle)
        with pytest.raises(GattError):
            client.discover_services()


class TestRelayBoard:
    def accepting_router(self):
        router = Router()
        received = []

        @router.route("POST", "/sightings")
        def post(request, params):
            received.append(request.body)
            return {"room": "kitchen"}

        return router, received

    def report(self):
        return SightingReport(
            device_id="alice",
            time=3.0,
            beacons=[RangedBeacon("1-1", -60.0, 2.0, False)],
        )

    def test_report_relayed_to_bms(self):
        router, received = self.accepting_router()
        board = RelayBoardService(router)
        client = board.connect()
        status = write_report_via_gatt(client, self.report())
        assert status == b"ok"
        assert board.reports_relayed == 1
        assert received[0]["device_id"] == "alice"
        assert received[0]["beacons"] == {"1-1": 2.0}

    def test_malformed_payload_counted(self):
        router, _ = self.accepting_router()
        board = RelayBoardService(router)
        client = board.connect()
        characteristic = client.find_characteristic(
            RELAY_SERVICE_UUID, RELAY_REPORT_CHAR_UUID
        )
        client.write(characteristic.handle, b"\xff\xfenot json")
        assert board.relay_failures == 1
        status = client.find_characteristic(
            RELAY_SERVICE_UUID, RELAY_STATUS_CHAR_UUID
        )
        assert client.read(status.handle).startswith(b"error")

    def test_bms_error_surfaces_in_status(self):
        router = Router()  # no /sightings route -> 404
        board = RelayBoardService(router)
        client = board.connect()
        status = write_report_via_gatt(client, self.report())
        assert status == b"error:404"
        assert board.relay_failures == 1

    def test_status_notifications(self):
        router, _ = self.accepting_router()
        board = RelayBoardService(router)
        client = board.connect()
        status = client.find_characteristic(
            RELAY_SERVICE_UUID, RELAY_STATUS_CHAR_UUID
        )
        notifications = []
        client.subscribe(status.handle, notifications.append)
        write_report_via_gatt(client, self.report())
        assert notifications == [b"ok"]
