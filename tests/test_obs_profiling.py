"""Tests for hot-path wall-clock profiling (repro.obs.profiling).

The module-level hooks must be free no-ops unless a profiler is
installed, and profiles must stay presentational: they ride outside
``FleetReport.to_dict`` / equality so instrumented runs remain
byte-identical to bare ones.
"""

import numpy as np

from repro.fleet import FleetLoadGenerator
from repro.obs import WallClockProfiler
from repro.obs.profiling import activated, active, measure, render_profile, tick


class TestModuleHooks:
    def test_inactive_measure_records_nothing(self):
        assert active() is None
        with measure("anything"):
            pass
        tick("anything")
        assert active() is None

    def test_inactive_measure_is_shared_nullcontext(self):
        # One stateless context serves every call site: no per-call
        # allocation on hot paths while profiling is off.
        assert measure("a") is measure("b")

    def test_activated_installs_and_restores(self):
        profiler = WallClockProfiler()
        with activated(profiler):
            assert active() is profiler
            with measure("work"):
                pass
            tick("hit")
        assert active() is None
        assert profiler.count("work") == 1
        assert profiler.count("hit") == 1
        assert profiler.totals()["work"] >= 0.0

    def test_activations_stack(self):
        outer, inner = WallClockProfiler(), WallClockProfiler()
        with activated(outer):
            with activated(inner):
                tick("x")
            assert active() is outer
            tick("x")
        assert inner.count("x") == 1
        assert outer.count("x") == 1


class TestStateAndMerge:
    def test_state_round_trips_through_merge(self):
        source = WallClockProfiler()
        with source.measure("train"):
            pass
        source.tick("hit")
        merged = WallClockProfiler().merge(source.state())
        assert merged.state() == source.state()

    def test_merge_accumulates(self):
        profiler = WallClockProfiler()
        profiler.merge({"totals": {"a": 1.0}, "counts": {"a": 2}})
        profiler.merge({"totals": {"a": 0.5}, "counts": {"a": 3}})
        assert profiler.totals() == {"a": 1.5}
        assert profiler.count("a") == 5

    def test_render_profile_tick_only_rows_show_dash(self):
        text = render_profile({"totals": {"slow": 1.0}, "counts": {"hit": 4}})
        lines = text.splitlines()
        assert lines[1].startswith("slow")
        assert lines[2].startswith("hit") and lines[2].rstrip().endswith("-")

    def test_render_profile_empty_state(self):
        assert render_profile({}) == "(no sections profiled)"


class TestHotPathSites:
    def test_gram_cache_hits_tick_and_misses_time(self):
        from repro.ml.gram_cache import GramCache
        from repro.ml.kernels import LinearKernel

        cache = GramCache()
        X = np.arange(12, dtype=float).reshape(4, 3)
        profiler = WallClockProfiler()
        with activated(profiler):
            cache.full(LinearKernel(), X)
            cache.full(LinearKernel(), X)
        assert profiler.count("ml.gram.full_miss") == 1
        assert profiler.count("ml.gram.full_hit") == 1
        assert "ml.gram.full_hit" not in profiler.totals()

    def test_svm_fit_and_predict_record(self):
        from repro.ml.svm import SupportVectorClassifier

        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 2))
        y = (X[:, 0] > 0).astype(int)
        profiler = WallClockProfiler()
        with activated(profiler):
            clf = SupportVectorClassifier().fit(X, y)
            clf.predict(X)
        assert profiler.count("ml.svm.smo_fit") >= 1
        assert profiler.count("ml.svm.predict") == 1

    def test_profiling_does_not_change_fitted_model(self):
        from repro.ml.svm import SupportVectorClassifier

        rng = np.random.default_rng(1)
        X = rng.normal(size=(30, 2))
        y = (X[:, 0] > 0).astype(int)
        bare = SupportVectorClassifier().fit(X, y).predict(X)
        with activated(WallClockProfiler()):
            profiled = SupportVectorClassifier().fit(X, y).predict(X)
        assert np.array_equal(bare, profiled)

    def test_link_budget_many_records(self):
        from repro.radio.channel import ChannelModel
        from repro.radio.devices import DEVICE_PROFILES

        channel = ChannelModel(seed=3)
        device = DEVICE_PROFILES["ideal"]
        profiler = WallClockProfiler()
        with activated(profiler):
            batch = channel.link_budget_many(
                ["b1", "b2"],
                [(0.0, 0.0), (5.0, 0.0)],
                [(1.0, 1.0), (1.0, 1.0)],
                [-59.0, -59.0],
                device,
                np.random.default_rng(0),
            )
        assert len(batch) == 2
        assert profiler.count("radio.link_budget_many") == 1


def run_fleet(**kwargs):
    return FleetLoadGenerator(
        devices=4,
        duration_s=30.0,
        batch_size=4,
        calibration_s=120.0,
        seed=0,
        **kwargs,
    ).run()


class TestFleetProfile:
    def test_single_process_profile_covers_phases(self):
        report = run_fleet(profile=True)
        totals = report.profile["totals"]
        for label in ("fleet.calibrate", "fleet.train", "fleet.drive"):
            assert label in totals
        assert "section" in report.profile_table()

    def test_sharded_profile_merges_workers(self):
        report = run_fleet(profile=True, shards=2, workers=2)
        assert report.profile["counts"]["fleet.shard_run"] == 2
        assert report.profile["counts"]["fleet.calibrate"] == 2

    def test_profile_stays_out_of_report_dict_and_equality(self):
        profiled = run_fleet(profile=True)
        bare = run_fleet()
        assert profiled.profile is not None
        assert bare.profile is None
        assert "profile" not in profiled.to_dict()
        assert profiled.to_dict() == bare.to_dict()
        assert profiled == bare

    def test_profile_table_without_profile_is_empty_placeholder(self):
        assert run_fleet().profile_table() == "(no sections profiled)"
