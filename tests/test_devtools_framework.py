"""Framework tests for `repro.devtools`: the rule registry, inline
suppressions, the ratcheting baseline, SARIF output, and the dataflow
edges of the shard-purity / numeric / determinism families that the
planted fixture trees do not cover."""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.devtools.determinism import UNSEEDED_RNG, WALL_CLOCK
from repro.devtools.findings import (
    RULE_REGISTRY,
    SEVERITIES,
    Finding,
    register_rule,
    rules_in_family,
)
from repro.devtools.lint import RULE_FAMILIES, run_lint
from repro.devtools.numeric import DICT_REDUCTION, ENV_BRANCH, SET_REDUCTION
from repro.devtools.shard_purity import (
    CLOSURE_MUTATION,
    GLOBAL_WRITE,
    GRAM_MUTATION,
    UNPICKLABLE_WORKER,
)
from repro.devtools.suppressions import (
    SUPPRESSION_UNJUSTIFIED,
    SUPPRESSION_UNUSED,
    scan_suppressions,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FIXTURES = REPO / "tests" / "fixtures" / "lint"

#: Stub of the pool entry point, shared by the synthetic shard trees.
ENGINE_STUB = (
    '"""Stub engine."""\n\n\n'
    "def run_shards(worker, shards, n_jobs=None):\n"
    "    return [worker(shard) for shard in shards]\n"
)

#: Stub of the Gram cache, shared by the synthetic handout trees.
GRAM_STUB = (
    '"""Stub cache."""\n\n\n'
    "class GramCache:\n"
    "    def full(self, kernel, X):\n"
    "        return kernel(X, X)\n\n"
    "    def sliced(self, kernel, X, rows):\n"
    "        return kernel(X, X)\n\n\n"
    "_CACHE = GramCache()\n\n\n"
    "def default_cache():\n"
    "    return _CACHE\n"
)


def _tree(tmp_path, files):
    for relpath, body in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(body, encoding="utf-8")
    return tmp_path


def _shard_tree(tmp_path, worker_body):
    return _tree(
        tmp_path,
        {
            "repro/__init__.py": "",
            "repro/parallel/__init__.py": "",
            "repro/parallel/engine.py": ENGINE_STUB,
            "repro/ml/__init__.py": "",
            "repro/ml/runner.py": worker_body,
        },
    )


def _rules(findings):
    return [f.rule for f in findings]


class TestRuleRegistry:
    """Every rule id is registered with a family and a valid severity."""

    def test_every_family_has_registered_rules(self):
        for family in RULE_FAMILIES:
            assert rules_in_family(family), family

    def test_severities_are_valid(self):
        for rule in RULE_REGISTRY.values():
            assert rule.severity in SEVERITIES, rule

    def test_known_severity_assignments(self):
        assert RULE_REGISTRY[GLOBAL_WRITE].severity == "error"
        assert RULE_REGISTRY[DICT_REDUCTION].severity == "warning"
        assert RULE_REGISTRY[SUPPRESSION_UNUSED].severity == "warning"

    def test_reregistering_identical_metadata_is_idempotent(self):
        rule = RULE_REGISTRY[WALL_CLOCK]
        assert (
            register_rule(rule.id, rule.family, rule.severity, rule.summary)
            == rule.id
        )

    def test_conflicting_reregistration_rejected(self):
        rule = RULE_REGISTRY[WALL_CLOCK]
        with pytest.raises(ValueError, match="already registered"):
            register_rule(rule.id, rule.family, rule.severity, "different")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            register_rule("bogus-rule", "imports", "fatal", "nope")
        assert "bogus-rule" not in RULE_REGISTRY


class TestSuppressions:
    """Inline `# repro: noqa[...]` behaviour through the full pipeline."""

    def _sim_tree(self, tmp_path, body):
        return _tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/sim/__init__.py": "",
                "repro/sim/mod.py": body,
            },
        )

    def test_trailing_suppression_absorbs_the_finding(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  "
            "# repro: noqa[determinism-wall-clock] fixture wants wall time\n",
        )
        assert run_lint(root) == []

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  "
            "# repro: noqa[numeric-set-reduction] aimed at the wrong rule\n",
        )
        assert sorted(_rules(run_lint(root))) == sorted(
            [WALL_CLOCK, SUPPRESSION_UNUSED]
        )

    def test_blanket_suppression_covers_any_rule(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # repro: noqa grandfathered call\n",
        )
        assert run_lint(root) == []

    def test_standalone_comment_suppresses_the_next_code_line(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "import time\n\n\ndef stamp():\n"
            "    # repro: noqa[determinism-wall-clock] justification that\n"
            "    # is too long to trail the statement itself\n"
            "    return time.time()\n",
        )
        assert run_lint(root) == []

    def test_docstring_mentioning_noqa_is_not_a_suppression(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            '"""Docs show `# repro: noqa[determinism-wall-clock]` usage."""\n'
            "X = 1\n",
        )
        assert run_lint(root) == []

    def test_unjustified_suppression_flagged(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # repro: noqa[determinism-wall-clock]\n",
        )
        findings = run_lint(root)
        assert _rules(findings) == [SUPPRESSION_UNJUSTIFIED]
        assert findings[0].severity == "warning"

    def test_unused_suppression_flagged_on_full_run_only(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "X = 1  # repro: noqa[numeric-set-reduction] long since fixed\n",
        )
        assert _rules(run_lint(root)) == [SUPPRESSION_UNUSED]
        # A partial run cannot tell stale from out-of-scope.
        assert run_lint(root, rules=["determinism", "suppressions"]) == []

    def test_scan_maps_standalone_blocks_to_following_code(self):
        table = scan_suppressions(
            "x = 1\n"
            "# repro: noqa[rule-a] block comment\n"
            "# plain continuation\n"
            "y = 2\n"
        )
        assert set(table) == {4}
        assert table[4].rules == frozenset({"rule-a"})
        assert table[4].justification == "block comment"

    def test_scan_ignores_trailing_block_at_eof(self):
        assert scan_suppressions("x = 1\n# repro: noqa[rule-a] dangling\n") == {}


class TestShardPurityEdges:
    """Worker resolution beyond the fixture trees: partials, aliases,
    cross-module imports, and the Gram handout dataflow."""

    def test_pure_worker_is_clean(self, tmp_path):
        root = _shard_tree(
            tmp_path,
            "from repro.parallel.engine import run_shards\n\n\n"
            "def _pure(shard):\n"
            "    total = 0.0\n"
            "    for value in shard:\n"
            "        total += value\n"
            "    return total\n\n\n"
            "def run(shards):\n"
            "    return run_shards(_pure, shards)\n",
        )
        assert run_lint(root) == []

    def test_partial_wrapped_worker_resolved(self, tmp_path):
        root = _shard_tree(
            tmp_path,
            "from functools import partial\n\n"
            "from repro.parallel.engine import run_shards\n\n"
            "COUNTS = {}\n\n\n"
            "def _fit(alpha, shard):\n"
            "    COUNTS[shard] = alpha\n"
            "    return alpha\n\n\n"
            "def run(shards):\n"
            "    return run_shards(partial(_fit, 0.5), shards)\n",
        )
        findings = run_lint(root)
        assert _rules(findings) == [GLOBAL_WRITE]
        assert findings[0].line == 9

    def test_worker_imported_from_another_module(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/parallel/__init__.py": "",
                "repro/parallel/engine.py": ENGINE_STUB,
                "repro/ml/__init__.py": "",
                "repro/ml/workers.py": (
                    "STATE = []\n\n\n"
                    "def fit(shard):\n"
                    "    STATE.append(shard)\n"
                    "    return shard\n"
                ),
                "repro/ml/runner.py": (
                    "from repro.ml.workers import fit\n"
                    "from repro.parallel.engine import run_shards\n\n\n"
                    "def run(shards):\n"
                    "    return run_shards(fit, shards)\n"
                ),
            },
        )
        findings = run_lint(root)
        assert _rules(findings) == [GLOBAL_WRITE]
        assert findings[0].module == "repro.ml.workers"
        assert findings[0].line == 5

    def test_mutation_of_unresolvable_name_is_closure_mutation(self, tmp_path):
        root = _shard_tree(
            tmp_path,
            "from repro.parallel.engine import run_shards\n\n\n"
            "def _collect(shard):\n"
            "    results.append(shard)\n"
            "    return shard\n\n\n"
            "def run(shards):\n"
            "    return run_shards(_collect, shards)\n",
        )
        findings = run_lint(root)
        assert _rules(findings) == [CLOSURE_MUTATION]
        assert findings[0].line == 5

    def test_nested_def_worker_is_unpicklable(self, tmp_path):
        root = _shard_tree(
            tmp_path,
            "from repro.parallel.engine import run_shards\n\n\n"
            "def run(shards):\n"
            "    def _inner(shard):\n"
            "        return shard\n\n"
            "    return run_shards(_inner, shards)\n",
        )
        assert _rules(run_lint(root)) == [UNPICKLABLE_WORKER]

    def test_keyword_worker_argument_resolved(self, tmp_path):
        root = _shard_tree(
            tmp_path,
            "from repro.parallel.engine import run_shards\n\n"
            "SEEN = set()\n\n\n"
            "def _mark(shard):\n"
            "    SEEN.add(shard)\n"
            "    return shard\n\n\n"
            "def run(shards):\n"
            "    return run_shards(worker=_mark, shards=shards)\n",
        )
        assert _rules(run_lint(root)) == [GLOBAL_WRITE]

    def test_gram_param_fill_diagonal_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/ml/__init__.py": "",
                "repro/ml/fit.py": (
                    "import numpy as np\n\n\n"
                    "def fit(gram):\n"
                    "    np.fill_diagonal(gram, 0.0)\n"
                    "    return gram\n"
                ),
            },
        )
        findings = run_lint(root)
        assert _rules(findings) == [GRAM_MUTATION]
        assert findings[0].line == 5

    def test_gram_copy_then_mutate_is_clean(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/ml/__init__.py": "",
                "repro/ml/fit.py": (
                    "def fit(gram):\n"
                    "    work = gram.copy()\n"
                    "    work += 1.0\n"
                    "    return work\n"
                ),
            },
        )
        assert run_lint(root) == []

    def test_gram_rebind_discards_handout_tracking(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/ml/__init__.py": "",
                "repro/ml/gram_cache.py": GRAM_STUB,
                "repro/ml/fit.py": (
                    "from repro.ml.gram_cache import default_cache\n\n\n"
                    "def fit(kernel, X):\n"
                    "    gram = default_cache().full(kernel, X)\n"
                    "    gram = gram * 2.0\n"
                    "    gram += 1.0\n"
                    "    return gram\n"
                ),
            },
        )
        assert run_lint(root) == []

    def test_sliced_handout_via_cache_local_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/ml/__init__.py": "",
                "repro/ml/gram_cache.py": GRAM_STUB,
                "repro/ml/fit.py": (
                    "from repro.ml.gram_cache import default_cache\n\n\n"
                    "def fit(kernel, X, rows):\n"
                    "    cache = default_cache()\n"
                    "    sub = cache.sliced(kernel, X, rows)\n"
                    "    sub[0, 0] = 1.0\n"
                    "    return sub\n"
                ),
            },
        )
        findings = run_lint(root)
        assert _rules(findings) == [GRAM_MUTATION]
        assert findings[0].line == 7


class TestNumericEdges:
    """Reduction-order and environment hazards beyond the fixture."""

    def _sim_tree(self, tmp_path, body, package="sim"):
        return _tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                f"repro/{package}/__init__.py": "",
                f"repro/{package}/mod.py": body,
            },
        )

    def test_dict_values_reduction_is_a_warning(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "def total(parts):\n    return sum(parts.values())\n",
            package="server",
        )
        findings = run_lint(root)
        assert _rules(findings) == [DICT_REDUCTION]
        assert findings[0].severity == "warning"

    def test_math_fsum_over_set_name_flagged(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "import math\n\n\ndef total(values):\n"
            "    pending = set(values)\n"
            "    return math.fsum(pending)\n",
        )
        assert _rules(run_lint(root)) == [SET_REDUCTION]

    def test_np_add_reduce_over_set_flagged(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "import numpy as np\n\n\ndef total(values):\n"
            "    return np.add.reduce(set(values))\n",
        )
        assert _rules(run_lint(root)) == [SET_REDUCTION]

    def test_loop_accumulation_over_set_algebra_flagged(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "def total(a, b):\n"
            "    seen = set(a)\n"
            "    total = 0.0\n"
            "    for value in seen | set(b):\n"
            "        total += value\n"
            "    return total\n",
        )
        assert _rules(run_lint(root)) == [SET_REDUCTION]

    def test_sorted_reduction_is_clean(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "def total(values):\n"
            "    return sum(sorted(set(values)))\n",
        )
        assert run_lint(root) == []

    def test_environ_branch_flagged(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "import os\n\n\ndef mode():\n"
            "    if os.environ.get('REPRO_DEBUG'):\n"
            "        return 1\n"
            "    return 0\n",
        )
        findings = run_lint(root)
        assert _rules(findings) == [ENV_BRANCH]
        assert findings[0].line == 5

    def test_getenv_member_import_branch_flagged(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "from os import getenv\n\n\ndef mode():\n"
            "    return 1 if getenv('REPRO_DEBUG') else 0\n",
        )
        assert _rules(run_lint(root)) == [ENV_BRANCH]

    def test_non_sim_packages_exempt(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "def total(values):\n    return sum(set(values))\n",
            package="report",
        )
        assert run_lint(root) == []


class TestDeterminismRegressions:
    """The aliased-import and np.random gaps closed in this family."""

    def _sim_tree(self, tmp_path, body):
        return _tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/sim/__init__.py": "",
                "repro/sim/mod.py": body,
            },
        )

    def test_aliased_datetime_fromtimestamp_flagged(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "from datetime import datetime as DT\n\n\n"
            "def when(ts):\n    return DT.fromtimestamp(ts)\n",
        )
        findings = run_lint(root)
        assert _rules(findings) == [WALL_CLOCK]
        assert "fromtimestamp" in findings[0].message

    def test_fromtimestamp_with_explicit_tz_allowed(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "from datetime import datetime as DT, timezone\n\n\n"
            "def when(ts):\n"
            "    return DT.fromtimestamp(ts, tz=timezone.utc)\n",
        )
        assert run_lint(root) == []

    def test_module_aliased_fromtimestamp_flagged(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "import datetime as dt\n\n\n"
            "def when(ts):\n    return dt.datetime.fromtimestamp(ts)\n",
        )
        assert _rules(run_lint(root)) == [WALL_CLOCK]

    def test_global_np_random_flagged(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "import numpy as np\n\n\n"
            "def draw(n):\n    return np.random.rand(n)\n",
        )
        findings = run_lint(root)
        assert _rules(findings) == [UNSEEDED_RNG]
        assert "np.random.rand" in findings[0].message

    def test_seeded_default_rng_allowed(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "import numpy as np\n\n\n"
            "def make(seed):\n    return np.random.default_rng(seed)\n",
        )
        assert run_lint(root) == []

    def test_argless_default_rng_flagged(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "import numpy as np\n\n\n"
            "def make():\n    return np.random.default_rng()\n",
        )
        assert _rules(run_lint(root)) == [UNSEEDED_RNG]

    def test_member_import_from_np_random_flagged(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "from numpy.random import shuffle\n\n\n"
            "def mix(x):\n    shuffle(x)\n    return x\n",
        )
        assert _rules(run_lint(root)) == [UNSEEDED_RNG]

    def test_numpy_random_module_alias_flagged(self, tmp_path):
        root = self._sim_tree(
            tmp_path,
            "from numpy import random as npr\n\n\n"
            "def draw():\n    return npr.normal()\n",
        )
        assert _rules(run_lint(root)) == [UNSEEDED_RNG]


class TestBaseline:
    """The ratchet: known findings pass, new fail, stale is debt."""

    def _finding(self, message, path="src/a.py", line=3):
        return Finding(
            path=path,
            line=line,
            rule="determinism-wall-clock",
            module="repro.a",
            message=message,
        )

    def test_round_trip(self, tmp_path):
        target = tmp_path / "baseline.json"
        findings = [self._finding("one"), self._finding("two")]
        assert write_baseline(target, findings) == 2
        assert load_baseline(target) == sorted(fingerprint(f) for f in findings)

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_invalid_file_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            load_baseline(target)

    def test_partition_is_multiset_aware(self):
        known_f = self._finding("dup")
        extra_f = self._finding("dup", line=9)
        entries = [fingerprint(known_f), fingerprint(self._finding("gone"))]
        new, known, stale = apply_baseline([known_f, extra_f], entries)
        # One budget slot for "dup": first match absorbed, second is new.
        assert known == [known_f]
        assert new == [extra_f]
        assert stale == [fingerprint(self._finding("gone"))]

    def test_fingerprint_ignores_line_numbers(self):
        a = self._finding("same", line=3)
        b = self._finding("same", line=77)
        assert fingerprint(a) == fingerprint(b)


class TestCliFramework:
    """CLI behaviour of --rules, --baseline and --format sarif."""

    def _run(self, *args, cwd=REPO):
        return subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )

    def test_rules_selection_skips_other_families(self):
        result = self._run(
            "--root", str(FIXTURES / "wall_clock"), "--rules", "imports"
        )
        assert result.returncode == 0, result.stderr

    def test_rules_selection_runs_the_selected_family(self):
        result = self._run(
            "--root",
            str(FIXTURES / "shard_global_write"),
            "--rules",
            "shard-purity,numeric",
            "--format",
            "json",
        )
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "shard-global-write"

    def test_update_baseline_without_baseline_is_usage_error(self):
        result = self._run("--root", "src", "--update-baseline")
        assert result.returncode == 2
        assert "--baseline" in result.stderr

    def test_baseline_ratchet_cycle(self, tmp_path):
        scratch = tmp_path / "tree"
        shutil.copytree(FIXTURES / "wall_clock", scratch)
        baseline = tmp_path / "baseline.json"
        # Dirty tree without a baseline fails ...
        assert self._run("--root", str(scratch)).returncode == 1
        # ... --update-baseline records the debt and exits clean ...
        update = self._run(
            "--root", str(scratch), "--baseline", str(baseline),
            "--update-baseline",
        )
        assert update.returncode == 0, update.stderr
        assert load_baseline(baseline)
        # ... after which the same findings are absorbed ...
        absorbed = self._run(
            "--root", str(scratch), "--baseline", str(baseline)
        )
        assert absorbed.returncode == 0, absorbed.stdout
        assert "known finding(s) suppressed" in absorbed.stderr
        # ... but a brand-new finding still fails ...
        extra = scratch / "repro" / "sim" / "extra.py"
        extra.write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        dirty = self._run(
            "--root", str(scratch), "--baseline", str(baseline),
            "--format", "json",
        )
        assert dirty.returncode == 1
        payload = json.loads(dirty.stdout)
        assert payload["count"] == 1
        assert payload["findings"][0]["path"].endswith("extra.py")
        # ... and once everything is fixed the baseline is stale debt:
        # reported on a normal run, fatal under --check-baseline.
        extra.unlink()
        (scratch / "repro" / "sim" / "jitter.py").write_text(
            "def jitter():\n    return 0.0\n", encoding="utf-8"
        )
        stale = self._run(
            "--root", str(scratch), "--baseline", str(baseline)
        )
        assert stale.returncode == 0
        assert "stale" in stale.stderr
        checked = self._run(
            "--root", str(scratch), "--baseline", str(baseline),
            "--check-baseline",
        )
        assert checked.returncode == 1
        # --update-baseline ratchets the debt away again.
        self._run(
            "--root", str(scratch), "--baseline", str(baseline),
            "--update-baseline",
        )
        assert load_baseline(baseline) == []

    def test_checked_in_baseline_is_empty_and_not_stale(self):
        entries = load_baseline(REPO / "devtools" / "baseline.json")
        assert entries == []

    def test_sarif_output_is_schema_shaped(self):
        result = self._run(
            "--root", str(FIXTURES / "wall_clock"), "--format", "sarif"
        )
        assert result.returncode == 1
        document = json.loads(result.stdout)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        rule_ids = [rule["id"] for rule in rules]
        assert sorted(rule_ids) == sorted(RULE_REGISTRY)
        for rule in rules:
            assert rule["defaultConfiguration"]["level"] in SEVERITIES
        (finding,) = run["results"]
        assert finding["ruleId"] == "determinism-wall-clock"
        assert rules[finding["ruleIndex"]]["id"] == finding["ruleId"]
        assert finding["level"] == "error"
        location = finding["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("jitter.py")
        assert location["region"]["startLine"] == 10

    def test_sarif_clean_tree_has_no_results(self):
        result = self._run("--root", "src", "--format", "sarif")
        assert result.returncode == 0, result.stdout
        document = json.loads(result.stdout)
        assert document["runs"][0]["results"] == []
