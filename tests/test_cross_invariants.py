"""Property-based tests for cross-cutting invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.building.floorplan import FloorPlan, Room, Wall
from repro.building.geometry import Point, Segment
from repro.ml.datasets import FingerprintVectorizer
from repro.server.bms import BuildingManagementServer
from repro.server.history import OccupancyHistory

coords = st.floats(-20.0, 20.0)


class TestFloorPlanProperties:
    @given(ax=coords, ay=coords, bx=coords, by=coords)
    def test_walls_crossed_is_symmetric(self, ax, ay, bx, by):
        plan = FloorPlan(
            rooms=[Room("a", 0, 0, 10, 10)],
            walls=[
                Wall(Segment(Point(5, 0), Point(5, 10)), "drywall"),
                Wall(Segment(Point(0, 5), Point(10, 5)), "brick"),
            ],
        )
        forward = sorted(plan.walls_crossed((ax, ay), (bx, by)))
        backward = sorted(plan.walls_crossed((bx, by), (ax, ay)))
        assert forward == backward

    @given(x=coords, y=coords)
    def test_room_at_is_deterministic(self, x, y):
        plan = FloorPlan(rooms=[Room("a", 0, 0, 5, 5), Room("b", 5, 0, 10, 5)])
        p = Point(x, y)
        assert plan.room_at(p) == plan.room_at(p)

    @given(x=st.floats(0.01, 4.99), y=st.floats(0.01, 4.99))
    def test_interior_points_belong_to_their_room(self, x, y):
        plan = FloorPlan(rooms=[Room("a", 0, 0, 5, 5)])
        assert plan.room_at(Point(x, y)) == "a"


class TestVectorizerProperties:
    @given(
        values=st.dictionaries(
            st.sampled_from(["b1", "b2", "b3"]),
            st.floats(0.1, 50.0),
            max_size=3,
        )
    )
    def test_transform_preserves_known_values(self, values):
        vec = FingerprintVectorizer(["b1", "b2", "b3"], missing_value=99.0)
        row = vec.transform_one(values)
        for i, beacon in enumerate(vec.beacon_ids):
            if beacon in values:
                assert row[i] == values[beacon]
            else:
                assert row[i] == 99.0

    @given(
        batch=st.lists(
            st.dictionaries(
                st.sampled_from(["b1", "b2"]), st.floats(0.1, 50.0), max_size=2
            ),
            max_size=6,
        )
    )
    def test_batch_equals_rowwise(self, batch):
        vec = FingerprintVectorizer(["b1", "b2"])
        X = vec.transform(batch)
        assert X.shape == (len(batch), 2)
        for i, fp in enumerate(batch):
            np.testing.assert_array_equal(X[i], vec.transform_one(fp))


class TestBmsProperties:
    @given(
        queries=st.lists(
            st.tuples(st.floats(0.1, 20.0), st.floats(0.1, 20.0)),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_classify_always_returns_known_label(self, queries):
        bms = BuildingManagementServer(["1-1", "1-2"])
        for i in range(6):
            bms.add_fingerprint("kitchen", {"1-1": 1.0 + 0.2 * i, "1-2": 8.0})
            bms.add_fingerprint("living", {"1-1": 8.0, "1-2": 1.0 + 0.2 * i})
        bms.train()
        for d1, d2 in queries:
            assert bms.classify({"1-1": d1, "1-2": d2}) in ("kitchen", "living")


class TestHistoryProperties:
    @given(
        counts=st.lists(
            st.dictionaries(
                st.sampled_from(["a", "b"]), st.integers(0, 5), max_size=2
            ),
            min_size=2,
            max_size=15,
        )
    )
    def test_mean_occupancy_bounded_by_peak(self, counts):
        history = OccupancyHistory()
        for t, rooms in enumerate(counts):
            history.record(float(t), rooms)
        for room in history.rooms():
            assert history.mean_occupancy(room) <= history.peak(room)
            assert 0.0 <= history.utilisation(room) <= 1.0
