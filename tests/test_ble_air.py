"""Tests for the air interface."""

import numpy as np
import pytest

from repro.ble.air import AirInterface
from repro.building.geometry import Point
from repro.building.presets import single_room, two_room_corridor
from repro.radio.channel import ChannelModel
from repro.radio.devices import DEVICE_PROFILES
from repro.radio.fading import RicianFading

IDEAL = DEVICE_PROFILES["ideal"]


def quiet_air(plan):
    channel = ChannelModel(
        shadowing_sigma_db=0.0, fading=None, collision_loss_prob=0.0
    )
    return AirInterface(plan, channel)


class TestObserve:
    def test_sees_all_advertisements_on_ideal_link(self):
        air = quiet_air(single_room())
        sightings = air.observe(
            lambda t: Point(1.5, 4.0), IDEAL, 0.0, 2.0, np.random.default_rng(0)
        )
        # 100 ms interval over 2 s: ~20 advertisements.
        assert 18 <= len(sightings) <= 22

    def test_sightings_sorted_by_time(self):
        air = quiet_air(two_room_corridor())
        sightings = air.observe(
            lambda t: Point(6.0, 1.5), IDEAL, 0.0, 5.0, np.random.default_rng(0)
        )
        times = [s.time for s in sightings]
        assert times == sorted(times)

    def test_sightings_carry_packet_identity(self):
        plan = single_room()
        air = quiet_air(plan)
        sightings = air.observe(
            lambda t: Point(1.5, 4.0), IDEAL, 0.0, 1.0, np.random.default_rng(0)
        )
        assert all(s.packet == plan.beacons[0].packet for s in sightings)

    def test_true_distance_recorded(self):
        plan = single_room()
        air = quiet_air(plan)
        beacon_pos = plan.beacons[0].position
        rx = Point(beacon_pos.x + 3.0, beacon_pos.y)
        sightings = air.observe(
            lambda t: rx, IDEAL, 0.0, 1.0, np.random.default_rng(0)
        )
        assert all(s.true_distance_m == pytest.approx(3.0) for s in sightings)

    def test_moving_receiver_changes_distance(self):
        plan = single_room()
        air = quiet_air(plan)
        beacon_pos = plan.beacons[0].position

        def walk(t):
            return Point(beacon_pos.x + 1.0 + t, beacon_pos.y)

        sightings = air.observe(walk, IDEAL, 0.0, 4.0, np.random.default_rng(0))
        distances = [s.true_distance_m for s in sightings]
        assert distances[0] < distances[-1]

    def test_wall_oracle_installed_from_plan(self):
        plan = two_room_corridor()
        air = AirInterface(plan)
        assert air.channel.wall_oracle is not None

    def test_both_beacons_visible_in_corridor(self):
        air = quiet_air(two_room_corridor())
        sightings = air.observe(
            lambda t: Point(6.0, 1.5), IDEAL, 0.0, 2.0, np.random.default_rng(0)
        )
        assert {s.beacon_id for s in sightings} == {"1-1", "1-2"}

    def test_closer_beacon_is_stronger(self):
        air = quiet_air(two_room_corridor())
        sightings = air.observe(
            lambda t: Point(2.0, 1.5), IDEAL, 0.0, 2.0, np.random.default_rng(0)
        )
        by_beacon = {}
        for s in sightings:
            by_beacon.setdefault(s.beacon_id, []).append(s.rssi)
        assert np.mean(by_beacon["1-1"]) > np.mean(by_beacon["1-2"])
