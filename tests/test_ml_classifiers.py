"""Tests for kNN, naive Bayes and the proximity baseline."""

import numpy as np
import pytest

from repro.ml.knn import KNeighborsClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.proximity import ProximityClassifier


def blobs(rng, centers, n_per=40, spread=0.6):
    X = np.vstack([rng.normal(c, spread, size=(n_per, len(c))) for c in centers])
    y = np.concatenate([np.full(n_per, i) for i in range(len(centers))])
    return X, np.array(["c%d" % i for i in y.astype(int)])


class TestKnn:
    def test_memorises_training_data_with_k1(self):
        rng = np.random.default_rng(0)
        X, y = blobs(rng, [(0, 0), (5, 5)])
        model = KNeighborsClassifier(k=1).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_separable_generalisation(self):
        rng = np.random.default_rng(1)
        X, y = blobs(rng, [(0, 0), (6, 0)])
        Xt, yt = blobs(rng, [(0, 0), (6, 0)], n_per=10)
        assert KNeighborsClassifier(5).fit(X, y).score(Xt, yt) == 1.0

    def test_distance_weighting_prefers_nearest(self):
        X = np.array([[0.0], [0.1], [10.0], [10.1], [10.2]])
        y = np.array(["near", "near", "far", "far", "far"])
        model = KNeighborsClassifier(k=5, weights="distance").fit(X, y)
        assert model.predict(np.array([[0.05]]))[0] == "near"

    def test_uniform_majority_wins(self):
        X = np.array([[0.0], [0.1], [0.2], [5.0], [5.1]])
        y = np.array(["a", "a", "a", "b", "b"])
        model = KNeighborsClassifier(k=5, weights="uniform").fit(X, y)
        assert model.predict(np.array([[2.0]]))[0] == "a"

    def test_k_larger_than_dataset_clamped(self):
        X = np.array([[0.0], [1.0]])
        y = np.array(["a", "b"])
        model = KNeighborsClassifier(k=99).fit(X, y)
        assert model.predict(np.array([[0.4]])).shape == (1,)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(k=0)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="quadratic")

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KNeighborsClassifier().predict(np.ones((1, 2)))

    def test_clone(self):
        model = KNeighborsClassifier(k=3, weights="distance")
        clone = model.clone()
        assert clone.k == 3 and clone.weights == "distance"


class TestGaussianNaiveBayes:
    def test_separable_blobs(self):
        rng = np.random.default_rng(0)
        X, y = blobs(rng, [(0, 0), (6, 0)])
        assert GaussianNaiveBayes().fit(X, y).score(X, y) > 0.98

    def test_respects_priors(self):
        rng = np.random.default_rng(1)
        # Overlapping classes, 9:1 prior; ambiguous points go majority.
        X = np.vstack([rng.normal(0, 1, (90, 1)), rng.normal(0.2, 1, (10, 1))])
        y = np.array(["major"] * 90 + ["minor"] * 10)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.predict(np.array([[0.1]]))[0] == "major"

    def test_log_proba_shape(self):
        rng = np.random.default_rng(2)
        X, y = blobs(rng, [(0, 0), (6, 0), (0, 6)])
        model = GaussianNaiveBayes().fit(X, y)
        assert model.predict_log_proba(X[:5]).shape == (5, 3)

    def test_handles_constant_feature(self):
        X = np.array([[0.0, 1.0], [0.1, 1.0], [5.0, 1.0], [5.1, 1.0]])
        y = np.array(["a", "a", "b", "b"])
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) == 1.0

    def test_rejects_negative_smoothing(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes(var_smoothing=-1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianNaiveBayes().predict(np.ones((1, 2)))


class TestProximity:
    BEACON_ROOMS = {"1-1": "kitchen", "1-2": "living"}
    FEATURES = ["1-1", "1-2"]

    def make(self, **kwargs):
        return ProximityClassifier(self.BEACON_ROOMS, self.FEATURES, **kwargs)

    def test_nearest_beacon_wins_distance_mode(self):
        model = self.make()
        X = np.array([[1.0, 5.0], [6.0, 2.0]])
        assert list(model.predict(X)) == ["kitchen", "living"]

    def test_strongest_beacon_wins_rssi_mode(self):
        model = self.make(mode="rssi", missing_value=-100.0)
        X = np.array([[-50.0, -70.0], [-80.0, -60.0]])
        assert list(model.predict(X)) == ["kitchen", "living"]

    def test_all_missing_is_outside(self):
        model = self.make(missing_value=30.0)
        X = np.array([[30.0, 30.0]])
        assert model.predict(X)[0] == "outside"

    def test_partial_visibility_uses_visible_only(self):
        model = self.make(missing_value=30.0)
        X = np.array([[30.0, 9.0]])
        assert model.predict(X)[0] == "living"

    def test_outside_threshold_distance_mode(self):
        model = self.make(outside_threshold=10.0)
        assert model.predict(np.array([[15.0, 20.0]]))[0] == "outside"
        assert model.predict(np.array([[5.0, 20.0]]))[0] == "kitchen"

    def test_outside_threshold_rssi_mode(self):
        model = self.make(
            mode="rssi", missing_value=-100.0, outside_threshold=-85.0
        )
        assert model.predict(np.array([[-95.0, -90.0]]))[0] == "outside"
        assert model.predict(np.array([[-60.0, -90.0]]))[0] == "kitchen"

    def test_fit_is_noop(self):
        model = self.make()
        assert model.fit(np.ones((1, 2)), ["kitchen"]) is model

    def test_rejects_unmapped_feature(self):
        with pytest.raises(ValueError):
            ProximityClassifier({"1-1": "kitchen"}, ["1-1", "1-9"])

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            self.make(mode="sonar")

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            self.make().predict(np.ones((1, 3)))

    def test_wants_scaling_false(self):
        """The BMS must not standardise proximity features."""
        assert self.make().wants_scaling is False

    def test_clone_roundtrip(self):
        model = self.make(outside_threshold=9.0)
        clone = model.clone()
        assert clone.outside_threshold == 9.0
        assert clone.beacon_rooms == self.BEACON_ROOMS
