"""Tests for the from-scratch SVM (SMO solver)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.kernels import LinearKernel, RbfKernel
from repro.ml.svm import BinarySVM, SupportVectorClassifier


def blobs(rng, centers, n_per=40, spread=0.6):
    X = np.vstack([rng.normal(c, spread, size=(n_per, len(c))) for c in centers])
    y = np.concatenate([np.full(n_per, i) for i in range(len(centers))])
    return X, y


class TestBinarySVM:
    def test_separable_problem_perfectly_classified(self):
        rng = np.random.default_rng(0)
        X, y01 = blobs(rng, [(-3.0, 0.0), (3.0, 0.0)], spread=0.4)
        y = np.where(y01 == 0, -1.0, 1.0)
        model = BinarySVM(c=10.0, kernel=LinearKernel()).fit(X, y)
        assert np.mean(model.predict(X) == y) == 1.0

    def test_xor_needs_rbf(self):
        """Linear fails XOR, RBF solves it - classic kernel check."""
        X = np.array(
            [[0, 0], [1, 1], [0, 1], [1, 0]] * 10, dtype=float
        ) + np.random.default_rng(1).normal(0, 0.05, (40, 2))
        y = np.array([-1, -1, 1, 1] * 10, dtype=float)
        rbf = BinarySVM(c=10.0, kernel=RbfKernel(gamma=2.0)).fit(X, y)
        assert np.mean(rbf.predict(X) == y) > 0.95

    def test_decision_function_sign_matches_predict(self):
        rng = np.random.default_rng(2)
        X, y01 = blobs(rng, [(-2.0, 0.0), (2.0, 0.0)])
        y = np.where(y01 == 0, -1.0, 1.0)
        model = BinarySVM(c=1.0).fit(X, y)
        scores = model.decision_function(X)
        np.testing.assert_array_equal(np.sign(scores) >= 0, model.predict(X) == 1.0)

    def test_support_vectors_subset_of_training(self):
        rng = np.random.default_rng(3)
        X, y01 = blobs(rng, [(-2.0, 0.0), (2.0, 0.0)])
        y = np.where(y01 == 0, -1.0, 1.0)
        model = BinarySVM(c=1.0).fit(X, y)
        assert 0 < model.n_support_ <= X.shape[0]
        for sv in model.support_vectors_:
            assert any(np.allclose(sv, row) for row in X)

    def test_dual_coefficients_bounded_by_c(self):
        rng = np.random.default_rng(4)
        X, y01 = blobs(rng, [(-1.0, 0.0), (1.0, 0.0)], spread=1.0)
        y = np.where(y01 == 0, -1.0, 1.0)
        c = 2.5
        model = BinarySVM(c=c).fit(X, y)
        assert np.all(np.abs(model.dual_coef_) <= c + 1e-6)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(5)
        X, y01 = blobs(rng, [(-1.0, 0.0), (1.0, 0.0)], spread=1.2)
        y = np.where(y01 == 0, -1.0, 1.0)
        a = BinarySVM(c=1.0, seed=7).fit(X, y)
        b = BinarySVM(c=1.0, seed=7).fit(X, y)
        np.testing.assert_allclose(
            a.decision_function(X), b.decision_function(X)
        )

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            BinarySVM().fit(np.ones((5, 2)), np.ones(5))

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            BinarySVM().fit(np.ones((4, 2)), np.array([0.0, 1.0, 0.0, 1.0]))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            BinarySVM().fit(np.ones((4, 2)), np.array([-1.0, 1.0]))

    def test_rejects_bad_c(self):
        with pytest.raises(ValueError):
            BinarySVM(c=0.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            BinarySVM().predict(np.ones((1, 2)))

    def test_single_sample_prediction_shape(self):
        rng = np.random.default_rng(6)
        X, y01 = blobs(rng, [(-2.0, 0.0), (2.0, 0.0)])
        y = np.where(y01 == 0, -1.0, 1.0)
        model = BinarySVM().fit(X, y)
        assert model.predict(np.array([0.5, 0.0])).shape == (1,)


class TestKktConditions:
    """The trained solution must satisfy the soft-margin KKT system -
    the mathematical definition of 'SMO converged correctly'."""

    def trained(self, seed=0, c=2.0):
        rng = np.random.default_rng(seed)
        X, y01 = blobs(rng, [(-1.5, 0.0), (1.5, 0.0)], n_per=30, spread=1.0)
        y = np.where(y01 == 0, -1.0, 1.0)
        model = BinarySVM(c=c, kernel=RbfKernel(gamma=0.5), tol=1e-4)
        model.fit(X, y)
        return model, X, y

    def test_dual_balance(self):
        """sum_i alpha_i y_i = 0 (the equality constraint)."""
        model, X, y = self.trained()
        assert abs(model.dual_coef_.sum()) < 1e-6

    def test_margin_conditions(self):
        """Non-bound SVs sit on the margin; bound ones inside it;
        non-SVs outside.  Checked via y_i f(x_i)."""
        model, X, y = self.trained()
        c = model.c
        margins = y * model.decision_function(X)
        # Recover per-sample alpha from the stored SV coefficients.
        alphas = np.zeros(len(X))
        for coef, sv in zip(model.dual_coef_, model.support_vectors_):
            idx = next(
                i for i, row in enumerate(X)
                if np.allclose(row, sv) and alphas[i] == 0.0
            )
            alphas[idx] = abs(coef)
        tol = 5e-2
        for alpha, margin in zip(alphas, margins):
            if alpha < 1e-8:
                assert margin >= 1.0 - tol  # correctly outside margin
            elif alpha > c - 1e-8:
                assert margin <= 1.0 + tol  # bound: inside/violating
            else:
                assert abs(margin - 1.0) < tol  # free SV: on the margin


class TestMulticlassSVC:
    def test_three_class_blobs(self):
        rng = np.random.default_rng(0)
        X, y = blobs(rng, [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)])
        labels = np.array(["a", "b", "c"])[y.astype(int)]
        model = SupportVectorClassifier(c=10.0).fit(X, labels)
        assert model.score(X, labels) > 0.95

    def test_string_labels_roundtrip(self):
        rng = np.random.default_rng(1)
        X, y = blobs(rng, [(0.0, 0.0), (5.0, 0.0)])
        labels = np.array(["kitchen", "living"])[y.astype(int)]
        model = SupportVectorClassifier().fit(X, labels)
        assert set(model.predict(X)) <= {"kitchen", "living"}

    def test_number_of_pairwise_machines(self):
        rng = np.random.default_rng(2)
        X, y = blobs(rng, [(0, 0), (4, 0), (0, 4), (4, 4)], n_per=20)
        model = SupportVectorClassifier(c=5.0).fit(X, y)
        assert len(model._machines) == 6  # C(4, 2)

    def test_classes_sorted(self):
        rng = np.random.default_rng(3)
        X, y = blobs(rng, [(0, 0), (5, 0)])
        labels = np.array(["zebra", "apple"])[y.astype(int)]
        model = SupportVectorClassifier().fit(X, labels)
        assert model.classes_ == ["apple", "zebra"]

    def test_clone_is_unfitted_with_same_params(self):
        model = SupportVectorClassifier(c=3.0, kernel=RbfKernel(0.2))
        clone = model.clone()
        assert clone.c == 3.0
        assert clone.kernel.gamma == 0.2
        with pytest.raises(RuntimeError):
            clone.predict(np.ones((1, 2)))

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            SupportVectorClassifier().fit(np.ones((5, 2)), ["a"] * 5)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SupportVectorClassifier().predict(np.ones((1, 2)))

    def test_generalises_to_held_out_data(self):
        rng = np.random.default_rng(4)
        X, y = blobs(rng, [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)], n_per=60)
        X_test, y_test = blobs(rng, [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)], n_per=20)
        model = SupportVectorClassifier(c=10.0).fit(X, y)
        assert model.score(X_test, y_test) > 0.85

    def test_n_support_total_positive(self):
        rng = np.random.default_rng(5)
        X, y = blobs(rng, [(0.0, 0.0), (4.0, 0.0)])
        model = SupportVectorClassifier().fit(X, y)
        assert model.n_support_total > 0


class TestBatchedPrediction:
    """The shared-Gram batch path must agree with per-row prediction."""

    @staticmethod
    def _fingerprint_model(n_classes=3, seed=0):
        rng = np.random.default_rng(seed)
        centers = [tuple(rng.uniform(0.0, 8.0, size=4)) for _ in range(n_classes)]
        X, y = blobs(rng, centers, n_per=25, spread=0.8)
        labels = np.array([f"room-{int(k)}" for k in y])
        return SupportVectorClassifier(c=10.0, kernel=RbfKernel(0.5)).fit(X, labels)

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_batch_equals_per_row_over_random_fingerprints(self, query_seed):
        model = self._fingerprint_model()
        rng = np.random.default_rng(query_seed)
        X = rng.uniform(-2.0, 10.0, size=(17, 4))
        batched = model.predict(X)
        per_row = np.asarray(
            [model.predict(row.reshape(1, -1))[0] for row in X]
        )
        np.testing.assert_array_equal(batched, per_row)

    def test_sv_bank_deduplicates_shared_support_vectors(self):
        model = self._fingerprint_model(n_classes=4, seed=3)
        bank_rows = model._sv_bank.shape[0]
        total_sv = model.n_support_total
        assert 0 < bank_rows <= total_sv
        for pair, machine in model._machines.items():
            assert len(model._sv_bank_rows[pair]) == machine.n_support_
            np.testing.assert_allclose(
                model._sv_bank[model._sv_bank_rows[pair]],
                machine.support_vectors_,
            )

    def test_sv_sq_norms_cached_per_machine(self):
        model = self._fingerprint_model()
        for machine in model._machines.values():
            np.testing.assert_allclose(
                machine._sv_sq_norms,
                np.sum(machine.support_vectors_ ** 2, axis=1),
            )

    def test_batch_path_matches_per_machine_decision_functions(self):
        """Predictions from the shared Gram equal the legacy per-machine
        path (the bank is an optimisation, not a semantic change)."""
        model = self._fingerprint_model(seed=7)
        rng = np.random.default_rng(11)
        X = rng.uniform(0.0, 8.0, size=(32, 4))
        batched = model.predict(X)
        # Recompute the vote with the unshared decision functions.
        n = X.shape[0]
        votes = np.zeros((n, len(model.classes_)))
        scores = np.zeros((n, len(model.classes_)))
        for (a, b), machine in model._machines.items():
            decision = machine.decision_function(X)
            winner_a = decision >= 0.0
            votes[winner_a, a] += 1
            votes[~winner_a, b] += 1
            scores[:, a] += decision
            scores[:, b] -= decision
        ranking = votes + 1e-9 * np.tanh(scores)
        expected = np.asarray(
            [model.classes_[w] for w in np.argmax(ranking, axis=1)]
        )
        np.testing.assert_array_equal(batched, expected)
