"""Tests for the Wi-Fi and Bluetooth-relay uplinks."""

import numpy as np
import pytest

from repro.comms.bt_relay import BluetoothRelayUplink
from repro.comms.wifi import WifiUplink
from repro.phone.app import RangedBeacon, SightingReport
from repro.server.rest import Router


def report(time=1.0):
    return SightingReport(
        device_id="alice",
        time=time,
        beacons=[RangedBeacon("1-1", -60.0, 2.0, False)],
    )


def accepting_router():
    router = Router()

    @router.route("POST", "/sightings")
    def post(request, params):
        return {"room": "kitchen"}

    return router


class TestWifiUplink:
    def test_delivers_to_router(self):
        uplink = WifiUplink(accepting_router(), rng=np.random.default_rng(0))
        response = uplink.send_report(report())
        assert response is not None and response.ok
        assert uplink.stats.delivered == 1

    def test_energy_charged_per_message(self):
        uplink = WifiUplink(accepting_router(), rng=np.random.default_rng(0))
        uplink.send_report(report())
        assert uplink.stats.energy_j > 0.0

    def test_idle_power_positive(self):
        """Wi-Fi keeps the adapter on - the paper's complaint."""
        uplink = WifiUplink(accepting_router())
        assert uplink.idle_power_w > 0.0

    def test_charge_idle_accumulates(self):
        uplink = WifiUplink(accepting_router())
        energy = uplink.charge_idle(10.0)
        assert energy == pytest.approx(uplink.idle_power_w * 10.0)
        assert uplink.stats.energy_j == pytest.approx(energy)

    def test_charge_idle_rejects_negative(self):
        with pytest.raises(ValueError):
            WifiUplink(accepting_router()).charge_idle(-1.0)

    def test_loss_and_retry(self):
        uplink = WifiUplink(accepting_router(), rng=np.random.default_rng(0))
        # Instance attribute overrides the class constant.
        uplink.LOSS_PROBABILITY = 1.0
        assert uplink.send_report(report()) is None
        assert uplink.stats.failed == 1
        assert uplink.stats.retries == uplink.max_retries

    def test_delivery_ratio(self):
        uplink = WifiUplink(accepting_router(), rng=np.random.default_rng(1))
        for k in range(20):
            uplink.send_report(report(float(k)))
        assert uplink.stats.delivery_ratio > 0.9

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            WifiUplink(accepting_router(), max_retries=-1)


class TestBluetoothRelayUplink:
    def test_delivers_via_relay(self):
        uplink = BluetoothRelayUplink(accepting_router(), rng=np.random.default_rng(0))
        response = uplink.send_report(report())
        assert response is not None and response.ok
        assert uplink.relay_requests == 1

    def test_no_idle_power(self):
        """BT connects on demand: no standing adapter cost."""
        assert BluetoothRelayUplink(accepting_router()).idle_power_w == 0.0

    def test_cheaper_per_message_than_wifi(self):
        router = accepting_router()
        wifi = WifiUplink(router)
        bt = BluetoothRelayUplink(router)
        size = 400
        assert bt.energy_per_message_j(size) < wifi.energy_per_message_j(size)

    def test_less_reliable_than_wifi(self):
        """Paper: BT less stable due to BLE Android API bugs."""
        assert (
            BluetoothRelayUplink.LOSS_PROBABILITY > WifiUplink.LOSS_PROBABILITY
        )

    def test_failed_attempts_still_cost_energy(self):
        uplink = BluetoothRelayUplink(accepting_router(), rng=np.random.default_rng(0))
        uplink.__dict__["LOSS_PROBABILITY"] = 1.0
        uplink.send_report(report())
        assert uplink.stats.energy_j > 0.0
        assert uplink.stats.delivered == 0

    def test_relay_leg_failure_counts_as_failed(self):
        uplink = BluetoothRelayUplink(accepting_router(), rng=np.random.default_rng(0))
        uplink.__dict__["RELAY_LOSS_PROBABILITY"] = 1.0
        assert uplink.send_report(report()) is None
        assert uplink.stats.failed == 1

    def test_long_run_delivery_ratio_reasonable(self):
        uplink = BluetoothRelayUplink(accepting_router(), rng=np.random.default_rng(3))
        for k in range(200):
            uplink.send_report(report(float(k)))
        # One retry on a 4 % loss channel: ~99.8 % delivery.
        assert uplink.stats.delivery_ratio > 0.97
