"""Tests for the Wi-Fi and Bluetooth-relay uplinks."""

import numpy as np
import pytest

from repro.comms.bt_relay import BluetoothRelayUplink
from repro.comms.uplink import BatchPolicy
from repro.comms.wifi import WifiUplink
from repro.phone.app import RangedBeacon, SightingReport
from repro.server.rest import Router


def report(time=1.0):
    return SightingReport(
        device_id="alice",
        time=time,
        beacons=[RangedBeacon("1-1", -60.0, 2.0, False)],
    )


def accepting_router():
    router = Router()

    @router.route("POST", "/sightings")
    def post(request, params):
        return {"room": "kitchen"}

    return router


class TestWifiUplink:
    def test_delivers_to_router(self):
        uplink = WifiUplink(accepting_router(), rng=np.random.default_rng(0))
        response = uplink.send_report(report())
        assert response is not None and response.ok
        assert uplink.stats.delivered == 1

    def test_energy_charged_per_message(self):
        uplink = WifiUplink(accepting_router(), rng=np.random.default_rng(0))
        uplink.send_report(report())
        assert uplink.stats.energy_j > 0.0

    def test_idle_power_positive(self):
        """Wi-Fi keeps the adapter on - the paper's complaint."""
        uplink = WifiUplink(accepting_router())
        assert uplink.idle_power_w > 0.0

    def test_charge_idle_accumulates(self):
        uplink = WifiUplink(accepting_router())
        energy = uplink.charge_idle(10.0)
        assert energy == pytest.approx(uplink.idle_power_w * 10.0)
        assert uplink.stats.energy_j == pytest.approx(energy)

    def test_charge_idle_rejects_negative(self):
        with pytest.raises(ValueError):
            WifiUplink(accepting_router()).charge_idle(-1.0)

    def test_loss_and_retry(self):
        uplink = WifiUplink(accepting_router(), rng=np.random.default_rng(0))
        # Instance attribute overrides the class constant.
        uplink.LOSS_PROBABILITY = 1.0
        assert uplink.send_report(report()) is None
        assert uplink.stats.failed == 1
        assert uplink.stats.retries == uplink.max_retries

    def test_delivery_ratio(self):
        uplink = WifiUplink(accepting_router(), rng=np.random.default_rng(1))
        for k in range(20):
            uplink.send_report(report(float(k)))
        assert uplink.stats.delivery_ratio > 0.9

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            WifiUplink(accepting_router(), max_retries=-1)


class TestBluetoothRelayUplink:
    def test_delivers_via_relay(self):
        uplink = BluetoothRelayUplink(accepting_router(), rng=np.random.default_rng(0))
        response = uplink.send_report(report())
        assert response is not None and response.ok
        assert uplink.relay_requests == 1

    def test_no_idle_power(self):
        """BT connects on demand: no standing adapter cost."""
        assert BluetoothRelayUplink(accepting_router()).idle_power_w == 0.0

    def test_cheaper_per_message_than_wifi(self):
        router = accepting_router()
        wifi = WifiUplink(router)
        bt = BluetoothRelayUplink(router)
        size = 400
        assert bt.energy_per_message_j(size) < wifi.energy_per_message_j(size)

    def test_less_reliable_than_wifi(self):
        """Paper: BT less stable due to BLE Android API bugs."""
        assert (
            BluetoothRelayUplink.LOSS_PROBABILITY > WifiUplink.LOSS_PROBABILITY
        )

    def test_failed_attempts_still_cost_energy(self):
        uplink = BluetoothRelayUplink(accepting_router(), rng=np.random.default_rng(0))
        uplink.__dict__["LOSS_PROBABILITY"] = 1.0
        uplink.send_report(report())
        assert uplink.stats.energy_j > 0.0
        assert uplink.stats.delivered == 0

    def test_relay_leg_failure_counts_as_failed(self):
        uplink = BluetoothRelayUplink(accepting_router(), rng=np.random.default_rng(0))
        uplink.__dict__["RELAY_LOSS_PROBABILITY"] = 1.0
        assert uplink.send_report(report()) is None
        assert uplink.stats.failed == 1

    def test_long_run_delivery_ratio_reasonable(self):
        uplink = BluetoothRelayUplink(accepting_router(), rng=np.random.default_rng(3))
        for k in range(200):
            uplink.send_report(report(float(k)))
        # One retry on a 4 % loss channel: ~99.8 % delivery.
        assert uplink.stats.delivery_ratio > 0.97


def reports(n, device="alice"):
    return [
        SightingReport(
            device_id=device,
            time=float(k),
            beacons=[RangedBeacon("1-1", -60.0, 2.0, False)],
        )
        for k in range(n)
    ]


def batch_router():
    """Router accepting both the single and the batch sighting routes."""
    router = Router()

    @router.route("POST", "/sightings")
    def post(request, params):
        return {"room": "kitchen"}

    @router.route("POST", "/sightings/batch")
    def post_batch(request, params):
        sightings = request.body["sightings"]
        return {"rooms": ["kitchen"] * len(sightings), "count": len(sightings)}

    return router


class TestSendBatch:
    def test_batch_delivers_all_reports_in_one_request(self):
        router = batch_router()
        uplink = WifiUplink(router, rng=np.random.default_rng(0))
        response = uplink.send_batch(reports(8))
        assert response is not None and response.ok
        assert response.body["count"] == 8
        assert uplink.stats.delivered == 8
        assert router.requests_handled == 1

    def test_batch_energy_amortises_connection_cost(self):
        """N batched reports must cost less than N individual sends:
        the wake/connection energy is paid once per batch."""
        n = 16
        batched = WifiUplink(batch_router(), rng=np.random.default_rng(0))
        batched.send_batch(reports(n))
        individual = WifiUplink(batch_router(), rng=np.random.default_rng(0))
        for r in reports(n):
            individual.send_report(r)
        assert batched.stats.energy_j < individual.stats.energy_j
        # The saving is roughly (n - 1) wake energies.
        saved = individual.stats.energy_j - batched.stats.energy_j
        assert saved > (n - 2) * WifiUplink.WAKE_ENERGY_J * 0.5

    def test_empty_batch_is_noop(self):
        uplink = WifiUplink(batch_router())
        assert uplink.send_batch([]) is None
        assert uplink.stats.attempts == 0

    def test_batch_loss_fails_all_reports(self):
        uplink = WifiUplink(batch_router(), rng=np.random.default_rng(0))
        uplink.LOSS_PROBABILITY = 1.0
        assert uplink.send_batch(reports(5)) is None
        assert uplink.stats.failed == 5
        assert uplink.stats.retries == uplink.max_retries

    def test_bt_relay_batch_uses_one_relay_request(self):
        uplink = BluetoothRelayUplink(batch_router(), rng=np.random.default_rng(0))
        response = uplink.send_batch(reports(6))
        assert response is not None and response.ok
        assert uplink.relay_requests == 1
        assert uplink.stats.delivered == 6


class TestBatchPolicy:
    def test_queue_without_policy_sends_immediately(self):
        uplink = WifiUplink(batch_router(), rng=np.random.default_rng(0))
        response = uplink.queue_report(report())
        assert response is not None and response.ok
        assert uplink.pending_reports == 0

    def test_flush_at_max_size(self):
        uplink = WifiUplink(
            batch_router(),
            rng=np.random.default_rng(0),
            batch_policy=BatchPolicy(max_size=3, max_delay_s=1000.0),
        )
        assert uplink.queue_report(report(0.0)) is None
        assert uplink.queue_report(report(1.0)) is None
        response = uplink.queue_report(report(2.0))
        assert response is not None and response.body["count"] == 3
        assert uplink.pending_reports == 0

    def test_flush_at_max_delay(self):
        uplink = WifiUplink(
            batch_router(),
            rng=np.random.default_rng(0),
            batch_policy=BatchPolicy(max_size=100, max_delay_s=10.0),
        )
        assert uplink.queue_report(report(0.0)) is None
        assert uplink.queue_report(report(5.0)) is None
        response = uplink.queue_report(report(10.0))
        assert response is not None and response.body["count"] == 3

    def test_explicit_flush_drains_buffer(self):
        uplink = WifiUplink(
            batch_router(),
            rng=np.random.default_rng(0),
            batch_policy=BatchPolicy(max_size=100, max_delay_s=1000.0),
        )
        uplink.queue_report(report(0.0))
        uplink.queue_report(report(1.0))
        assert uplink.pending_reports == 2
        response = uplink.flush()
        assert response is not None and response.body["count"] == 2
        assert uplink.flush() is None  # idle flush is a no-op

    def test_discard_pending(self):
        uplink = WifiUplink(
            batch_router(),
            batch_policy=BatchPolicy(max_size=100, max_delay_s=1000.0),
        )
        uplink.queue_report(report(0.0))
        assert uplink.discard_pending() == 1
        assert uplink.pending_reports == 0
        assert uplink.stats.attempts == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_delay_s=-1.0)


def backpressured_router(reject_first_n, retry_after_s=0.5):
    """A router that 429s the first N dispatches, then accepts.

    Mirrors the sharded front door's backpressure wire format; records
    every dispatched request in ``router.seen`` so tests can check the
    retry's advanced logical time.
    """
    from repro.server.rest import HttpError

    router = Router()
    router.seen = []
    state = {"remaining": reject_first_n}

    def guard(request):
        router.seen.append(request)
        if state["remaining"] > 0:
            state["remaining"] -= 1
            raise HttpError(
                429,
                "ingress queue full",
                extra={"retry_after_s": retry_after_s, "shard": 0},
            )

    @router.route("POST", "/sightings")
    def post(request, params):
        guard(request)
        return {"room": "kitchen"}

    @router.route("POST", "/sightings/batch")
    def post_batch(request, params):
        guard(request)
        return {
            "rooms": ["kitchen"] * len(request.body["sightings"]),
            "count": len(request.body["sightings"]),
        }

    return router


class TestUplinkBackpressure:
    def test_retry_honours_hint_then_delivers(self):
        router = backpressured_router(reject_first_n=1, retry_after_s=0.5)
        uplink = WifiUplink(router, rng=np.random.default_rng(0))
        response = uplink.send_report(report(time=1.0))
        assert response is not None and response.ok
        assert uplink.stats.delivered == 1
        assert uplink.stats.retries == 1
        # The retry advanced the request's logical time by the hint.
        assert [r.time for r in router.seen] == [1.0, 1.5]
        snapshot = uplink.obs.snapshot()
        assert snapshot["uplink.backpressure_retries"]["value"] == 1.0
        assert snapshot["uplink.backpressure_dropped"]["value"] == 0.0

    def test_bounded_retries_then_drop(self):
        router = backpressured_router(reject_first_n=10)
        uplink = WifiUplink(router, rng=np.random.default_rng(0))
        response = uplink.send_report(report(time=1.0))
        assert response is not None and response.status == 429
        assert uplink.stats.delivered == 0
        assert uplink.stats.failed == 1
        assert len(router.seen) == 1 + uplink.max_backpressure_retries
        snapshot = uplink.obs.snapshot()
        assert (
            snapshot["uplink.backpressure_retries"]["value"]
            == uplink.max_backpressure_retries
        )
        assert snapshot["uplink.backpressure_dropped"]["value"] == 1.0

    def test_batch_drop_counts_every_report(self):
        router = backpressured_router(reject_first_n=10)
        uplink = WifiUplink(router, rng=np.random.default_rng(0))
        response = uplink.send_batch([report(1.0), report(2.0), report(3.0)])
        assert response is not None and response.status == 429
        assert uplink.stats.failed == 3
        snapshot = uplink.obs.snapshot()
        assert snapshot["uplink.backpressure_dropped"]["value"] == 3.0

    def test_backpressure_retries_cost_bytes_and_energy(self):
        router = backpressured_router(reject_first_n=1)
        uplink = WifiUplink(router, rng=np.random.default_rng(0))
        uplink.send_report(report(time=1.0))
        baseline = WifiUplink(
            backpressured_router(reject_first_n=0),
            rng=np.random.default_rng(0),
        )
        baseline.send_report(report(time=1.0))
        assert uplink.stats.bytes_sent == 2 * baseline.stats.bytes_sent
        assert uplink.stats.energy_j > baseline.stats.energy_j

    def test_on_backpressure_seam_runs_before_each_retry(self):
        router = backpressured_router(reject_first_n=1)
        uplink = WifiUplink(router, rng=np.random.default_rng(0))
        calls = []
        uplink.on_backpressure = lambda request, attempt: calls.append(
            (request.time, attempt)
        )
        uplink.send_report(report(time=1.0))
        assert calls == [(1.5, 1)]

    def test_zero_bound_drops_immediately(self):
        router = backpressured_router(reject_first_n=10)
        uplink = WifiUplink(router, rng=np.random.default_rng(0))
        uplink.max_backpressure_retries = 0
        response = uplink.send_report(report(time=1.0))
        assert response.status == 429
        assert len(router.seen) == 1
