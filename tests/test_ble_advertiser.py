"""Tests for advertiser scheduling."""

import pytest

from repro.ble.advertiser import ADV_DELAY_MAX_S, Advertiser, advertisement_times
from repro.building.geometry import Point
from repro.building.presets import make_beacon


class TestAdvertisementTimes:
    def test_count_matches_interval(self):
        times = advertisement_times(0.0, 10.0, 0.1, seed=1)
        assert 95 <= len(times) <= 101

    def test_all_times_within_window(self):
        times = advertisement_times(5.0, 8.0, 0.1, seed=1)
        assert all(5.0 <= t < 8.0 for t in times)

    def test_deterministic(self):
        assert advertisement_times(0, 5, 0.1, seed=3) == advertisement_times(
            0, 5, 0.1, seed=3
        )

    def test_different_seed_different_jitter(self):
        a = advertisement_times(0, 5, 0.1, seed=3)
        b = advertisement_times(0, 5, 0.1, seed=4)
        assert a != b

    def test_jitter_bounded(self):
        times = advertisement_times(0.0, 5.0, 0.1, seed=1)
        for k, t in enumerate(times):
            slot = round((t - 0.005) / 0.1)
            assert 0.0 <= t - slot * 0.1 <= ADV_DELAY_MAX_S + 1e-9

    def test_window_query_is_consistent_with_subwindows(self):
        """Querying [0,10) must equal [0,5) + [5,10)."""
        whole = advertisement_times(0.0, 10.0, 0.1, seed=5)
        parts = advertisement_times(0.0, 5.0, 0.1, seed=5) + advertisement_times(
            5.0, 10.0, 0.1, seed=5
        )
        assert whole == parts

    def test_phase_shifts_schedule(self):
        base = advertisement_times(0.0, 1.0, 0.1, seed=1, phase_s=0.0)
        shifted = advertisement_times(0.0, 1.0, 0.1, seed=1, phase_s=0.05)
        assert base != shifted

    def test_empty_window(self):
        assert advertisement_times(5.0, 5.0, 0.1) == []

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            advertisement_times(5.0, 4.0, 0.1)

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError):
            advertisement_times(0.0, 5.0, 0.0)

    def test_sorted_output(self):
        times = advertisement_times(0.0, 20.0, 0.3, seed=2)
        assert times == sorted(times)


class TestAdvertiser:
    def test_uses_placement_interval(self):
        beacon = make_beacon(1, Point(0, 0), "a", advertising_interval_s=0.5)
        adv = Advertiser(placement=beacon)
        times = adv.times_in(0.0, 10.0)
        assert 18 <= len(times) <= 21

    def test_distinct_beacons_have_distinct_schedules(self):
        a = Advertiser(placement=make_beacon(1, Point(0, 0), "a"))
        b = Advertiser(placement=make_beacon(2, Point(0, 0), "a"))
        assert a.times_in(0.0, 2.0) != b.times_in(0.0, 2.0)
