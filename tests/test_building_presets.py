"""Tests for the ready-made floor plans."""

import pytest

from repro.building.floorplan import OUTSIDE
from repro.building.geometry import Point
from repro.building.presets import (
    BUILDING_UUID,
    make_beacon,
    office_floor,
    single_room,
    test_house as make_test_house,
    two_room_corridor,
)


class TestSingleRoom:
    def test_one_room_one_beacon(self):
        plan = single_room()
        assert len(plan.rooms) == 1
        assert len(plan.beacons) == 1

    def test_beacon_inside_room(self):
        plan = single_room()
        assert plan.room_at(plan.beacons[0].position) == "lab"


class TestTwoRoomCorridor:
    def test_two_rooms_two_beacons(self):
        plan = two_room_corridor()
        assert plan.room_names == ["room_a", "room_b"]
        assert len(plan.beacons) == 2

    def test_beacons_in_their_rooms(self):
        plan = two_room_corridor()
        for beacon in plan.beacons:
            assert plan.room_at(beacon.position) == beacon.room

    def test_all_beacons_share_building_uuid(self):
        plan = two_room_corridor()
        assert {b.packet.uuid for b in plan.beacons} == {BUILDING_UUID}


class TestTestHouse:
    def test_five_rooms(self):
        plan = make_test_house()
        assert len(plan.rooms) == 5

    def test_one_beacon_per_room(self):
        plan = make_test_house()
        assert sorted(b.room for b in plan.beacons) == sorted(plan.room_names)

    def test_beacons_placed_in_their_rooms(self):
        plan = make_test_house()
        for beacon in plan.beacons:
            assert plan.room_at(beacon.position) == beacon.room

    def test_rooms_partition_the_footprint(self):
        plan = make_test_house()
        # Probe strictly interior points (offsets avoid every wall
        # coordinate): each must lie in exactly one room.
        probes = [
            Point(0.3 + 0.6 * i, 0.3 + 0.6 * j)
            for i in range(19)
            for j in range(12)
        ]
        for p in probes:
            containing = [r.name for r in plan.rooms if r.contains(p)]
            assert len(containing) == 1, (p, containing)

    def test_exterior_point_is_outside(self):
        plan = make_test_house()
        assert plan.room_at(Point(-3, -3)) == OUTSIDE

    def test_interior_walls_separate_living_and_kitchen(self):
        plan = make_test_house()
        crossed = plan.walls_crossed((3.0, 2.0), (9.0, 2.0))
        assert "drywall" in crossed

    def test_exterior_walls_are_brick(self):
        plan = make_test_house()
        crossed = plan.walls_crossed((6.0, 4.0), (6.0, 20.0))
        assert "brick" in crossed

    def test_custom_tx_power_propagates(self):
        plan = make_test_house(tx_power=-65)
        assert all(b.packet.tx_power == -65 for b in plan.beacons)


class TestOfficeFloor:
    def test_office_count(self):
        plan = office_floor(4)
        assert sum(1 for r in plan.rooms if r.name.startswith("office")) == 4

    def test_has_corridor(self):
        assert "corridor" in office_floor(3).room_names

    def test_beacon_per_office_plus_corridor(self):
        plan = office_floor(4)
        assert len(plan.beacons) == 5

    def test_rejects_zero_offices(self):
        with pytest.raises(ValueError):
            office_floor(0)

    def test_beacons_in_their_rooms(self):
        plan = office_floor(5)
        for beacon in plan.beacons:
            assert plan.room_at(beacon.position) == beacon.room


class TestMakeBeacon:
    def test_default_uuid_and_power(self):
        beacon = make_beacon(1, Point(0, 0), "a")
        assert beacon.packet.uuid == BUILDING_UUID
        assert beacon.packet.tx_power == -59

    def test_minor_becomes_identity(self):
        beacon = make_beacon(42, Point(0, 0), "a", major=3)
        assert beacon.beacon_id == "3-42"
