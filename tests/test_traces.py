"""Tests for trace records, IO round-trips and synthesis."""

import pytest

from repro.building.geometry import Point
from repro.building.presets import single_room, test_house as make_test_house
from repro.traces.io import (
    read_trace_csv,
    read_trace_jsonl,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.traces.schema import BeaconTrace, TraceMeta, TraceRecord
from repro.traces.synth import (
    synthesize_static_trace,
    synthesize_survey_trace,
    synthesize_walk_trace,
)


def sample_trace():
    trace = BeaconTrace(
        meta=TraceMeta(scenario="test", device="s3_mini", scan_period_s=2.0, seed=7)
    )
    trace.append(
        TraceRecord(
            time=2.0,
            device_id="d1",
            rssi={"1-1": -60.0},
            distance={"1-1": 2.1},
            true_room="lab",
            true_position=(1.0, 2.0),
        )
    )
    trace.append(
        TraceRecord(
            time=4.0,
            device_id="d1",
            rssi={"1-1": -62.0, "1-2": -80.0},
            distance={"1-1": 2.3, "1-2": 9.0},
            true_room="lab",
            true_position=(1.1, 2.0),
        )
    )
    return trace


class TestSchema:
    def test_append_enforces_time_order(self):
        trace = sample_trace()
        with pytest.raises(ValueError):
            trace.append(
                TraceRecord(time=1.0, device_id="d1", rssi={}, distance={})
            )

    def test_duration(self):
        assert sample_trace().duration_s == pytest.approx(2.0)

    def test_empty_trace_duration_zero(self):
        trace = BeaconTrace(
            meta=TraceMeta(scenario="x", device="d", scan_period_s=1.0, seed=0)
        )
        assert trace.duration_s == 0.0

    def test_beacon_ids_union(self):
        assert sample_trace().beacon_ids() == ["1-1", "1-2"]

    def test_rssi_series_skips_missing_cycles(self):
        series = sample_trace().rssi_series("1-2")
        assert series == [(4.0, -80.0)]

    def test_distance_series(self):
        series = sample_trace().distance_series("1-1")
        assert series == [(2.0, 2.1), (4.0, 2.3)]


class TestJsonlRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(trace, path)
        back = read_trace_jsonl(path)
        assert back.meta == trace.meta
        assert back.records == trace.records

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            read_trace_jsonl(path)

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1.0}\n')
        with pytest.raises(ValueError):
            read_trace_jsonl(path)


class TestCsvRoundtrip:
    def test_roundtrip_preserves_measurements(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.csv"
        write_trace_csv(trace, path)
        back = read_trace_csv(path)
        assert len(back) == len(trace)
        for orig, copy in zip(trace.records, back.records):
            assert copy.time == pytest.approx(orig.time)
            assert copy.true_room == orig.true_room
            for beacon, value in orig.rssi.items():
                assert copy.rssi[beacon] == pytest.approx(value, abs=1e-3)

    def test_rejects_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,device_id\n1.0,d1\n")
        with pytest.raises(ValueError):
            read_trace_csv(path)

    def test_custom_meta_attached(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.csv"
        write_trace_csv(trace, path)
        back = read_trace_csv(path, meta=trace.meta)
        assert back.meta == trace.meta


class TestSynthStatic:
    def test_record_count_matches_duration(self):
        plan = single_room()
        trace = synthesize_static_trace(
            plan, Point(2.5, 4.0), duration_s=20.0, scan_period_s=2.0, seed=1
        )
        assert len(trace) == 10

    def test_ground_truth_room_labelled(self):
        plan = single_room()
        trace = synthesize_static_trace(
            plan, Point(2.5, 4.0), duration_s=10.0, seed=1
        )
        assert all(r.true_room == "lab" for r in trace.records)

    def test_deterministic_given_seed(self):
        plan = single_room()
        a = synthesize_static_trace(plan, Point(2.5, 4.0), duration_s=10.0, seed=3)
        b = synthesize_static_trace(plan, Point(2.5, 4.0), duration_s=10.0, seed=3)
        assert a.records == b.records

    def test_seed_changes_trace(self):
        plan = single_room()
        a = synthesize_static_trace(plan, Point(2.5, 4.0), duration_s=10.0, seed=3)
        b = synthesize_static_trace(plan, Point(2.5, 4.0), duration_s=10.0, seed=4)
        assert a.records != b.records

    def test_ios_platform_supported(self):
        plan = single_room()
        trace = synthesize_static_trace(
            plan, Point(2.5, 4.0), duration_s=10.0, seed=1, platform="ios"
        )
        assert len(trace) == 5

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            synthesize_static_trace(single_room(), Point(1, 1), duration_s=0.0)


class TestSynthWalk:
    def test_walk_covers_both_rooms(self):
        from repro.building.presets import two_room_corridor

        plan = two_room_corridor()
        trace = synthesize_walk_trace(
            plan,
            [Point(1.0, 1.5), Point(11.0, 1.5)],
            speed_mps=1.2,
            seed=2,
        )
        rooms = {r.true_room for r in trace.records}
        assert rooms == {"room_a", "room_b"}

    def test_distance_to_destination_decreases(self):
        from repro.building.presets import two_room_corridor

        plan = two_room_corridor()
        trace = synthesize_walk_trace(
            plan, [Point(1.0, 1.5), Point(11.0, 1.5)], seed=2
        )
        positions = [r.true_position for r in trace.records]
        first = Point(*positions[0]).distance_to(Point(11.0, 1.5))
        last = Point(*positions[-1]).distance_to(Point(11.0, 1.5))
        assert last < first


class TestSynthSurvey:
    def test_all_rooms_and_outside_sampled(self):
        plan = make_test_house()
        trace = synthesize_survey_trace(
            plan, points_per_room=2, dwell_s=4.0, outside_points=2, seed=5
        )
        labels = {r.true_room for r in trace.records}
        assert labels == set(plan.room_names) | {"outside"}

    def test_sample_count(self):
        plan = make_test_house()
        trace = synthesize_survey_trace(
            plan, points_per_room=2, dwell_s=4.0, outside_points=1,
            scan_period_s=2.0, seed=5,
        )
        # (5 rooms * 2 points + 1 outside) * 2 cycles each.
        assert len(trace) == 22

    def test_rejects_dwell_shorter_than_scan(self):
        with pytest.raises(ValueError):
            synthesize_survey_trace(
                make_test_house(), dwell_s=1.0, scan_period_s=2.0
            )

    def test_rejects_zero_points(self):
        with pytest.raises(ValueError):
            synthesize_survey_trace(make_test_house(), points_per_room=0)

    def test_times_strictly_ordered(self):
        plan = make_test_house()
        trace = synthesize_survey_trace(
            plan, points_per_room=1, dwell_s=4.0, seed=5
        )
        times = [r.time for r in trace.records]
        assert times == sorted(times)


class TestStreamingJsonl:
    """The JSONL path streams: reading never materialises the raw
    file text alongside the parsed trace, and writing never builds
    one string holding the whole file."""

    def big_trace(self, records=4000):
        trace = BeaconTrace(
            meta=TraceMeta(
                scenario="stream", device="d", scan_period_s=1.0, seed=0
            )
        )
        for i in range(records):
            trace.append(
                TraceRecord(
                    time=float(i),
                    device_id=f"dev-{i % 7}",
                    rssi={f"1-{b}": -60.0 - 0.125 * i for b in range(4)},
                    distance={f"1-{b}": 2.0 + 0.03125 * i for b in range(4)},
                    true_room="lab",
                    true_position=(1.0, 2.0),
                )
            )
        return trace

    def test_round_trip_and_chunked_write(self, tmp_path):
        trace = self.big_trace(records=1200)  # spans several chunks
        path = tmp_path / "big.jsonl"
        write_trace_jsonl(trace, path)
        back = read_trace_jsonl(path)
        assert len(back.records) == len(trace.records)
        assert back.records[0] == trace.records[0]
        assert back.records[-1] == trace.records[-1]

    def test_read_peak_memory_tracks_the_trace_not_the_file(self, tmp_path):
        import gc
        import tracemalloc

        trace = self.big_trace(records=5000)
        path = tmp_path / "big.jsonl"
        write_trace_jsonl(trace, path)
        file_size = path.stat().st_size
        assert file_size > 1_000_000  # the regression needs a big file

        del trace
        gc.collect()
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        loaded = read_trace_jsonl(path)
        _, peak = tracemalloc.get_traced_memory()
        retained, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Peak transient overhead beyond the parsed trace must stay
        # well under the raw file size: the old reader held every line
        # of the file in a list before parsing a single record.
        transient = (peak - before) - (retained - before)
        assert len(loaded.records) == 5000
        assert transient < 0.5 * file_size
