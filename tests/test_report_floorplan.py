"""Tests for the ASCII floor-plan renderer and classification report."""

import pytest

from repro.building.geometry import Point
from repro.building.presets import test_house as make_test_house, two_room_corridor
from repro.ml.metrics import ConfusionMatrix
from repro.report.floorplan_art import render_plan


class TestRenderPlan:
    def test_rooms_drawn_with_letters(self):
        art = render_plan(two_room_corridor())
        # room_a -> 'r', room_b -> disambiguated letter.
        assert "r" in art
        assert "legend" in art

    def test_beacons_marked(self):
        art = render_plan(make_test_house())
        grid_rows = [l for l in art.splitlines() if l.startswith("|")]
        assert sum(row.count("B") for row in grid_rows) == 5

    def test_markers_overlaid(self):
        art = render_plan(
            make_test_house(), markers={"alice": Point(3.0, 2.5)}
        )
        assert "A" in art
        assert "A=alice" in art

    def test_outside_cells_blank(self):
        art = render_plan(two_room_corridor())
        body = [l for l in art.splitlines() if l.startswith("|")]
        assert body  # has grid rows

    def test_distinct_letters_for_colliding_initials(self):
        plan = make_test_house()  # bedroom vs bathroom share 'b'
        art = render_plan(plan)
        legend_line = [l for l in art.splitlines() if l.startswith("legend")][0]
        letters = [part.split("=")[0] for part in legend_line[8:].split()]
        assert len(set(letters)) == len(letters)

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            render_plan(two_room_corridor(), cell_m=0.0)

    def test_no_legend_option(self):
        art = render_plan(two_room_corridor(), show_legend=False)
        assert "legend" not in art

    def test_grid_dimensions_scale_with_cell(self):
        coarse = render_plan(two_room_corridor(), cell_m=1.0, show_legend=False)
        fine = render_plan(two_room_corridor(), cell_m=0.5, show_legend=False)
        assert len(fine.splitlines()) > len(coarse.splitlines())


class TestClassificationReport:
    def test_report_contains_all_classes(self):
        cm = ConfusionMatrix(
            ["a", "a", "b", "b"], ["a", "b", "b", "b"], labels=["a", "b"]
        )
        report = cm.classification_report()
        assert "a" in report and "b" in report
        assert "precision" in report
        assert "accuracy: 0.750" in report

    def test_support_column(self):
        cm = ConfusionMatrix(["a"] * 3 + ["b"], ["a"] * 3 + ["b"])
        report = cm.classification_report()
        assert "3" in report  # class a support
