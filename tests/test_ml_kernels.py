"""Tests for SVM kernels."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.kernels import LinearKernel, PolynomialKernel, RbfKernel

small_matrices = arrays(
    np.float64,
    st.tuples(st.integers(1, 6), st.integers(1, 4)),
    elements=st.floats(-10, 10),
)


class TestLinearKernel:
    def test_matches_dot_product(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        K = LinearKernel()(X, X)
        np.testing.assert_allclose(K, X @ X.T)

    def test_rectangular_gram(self):
        X = np.ones((3, 2))
        Y = np.ones((5, 2))
        assert LinearKernel()(X, Y).shape == (3, 5)

    def test_1d_input_promoted(self):
        K = LinearKernel()(np.array([1.0, 2.0]), np.array([[3.0, 4.0]]))
        assert K.shape == (1, 1)
        assert K[0, 0] == pytest.approx(11.0)

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            LinearKernel()(np.ones((2, 2, 2)), np.ones((2, 2)))


class TestPolynomialKernel:
    def test_degree_one_matches_affine_linear(self):
        X = np.array([[1.0, 2.0]])
        K = PolynomialKernel(degree=1, gamma=1.0, coef0=1.0)(X, X)
        assert K[0, 0] == pytest.approx(1.0 + 5.0)

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            PolynomialKernel(degree=0)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            PolynomialKernel(gamma=0.0)


class TestRbfKernel:
    def test_self_similarity_is_one(self):
        X = np.array([[1.0, -2.0], [0.5, 3.0]])
        K = RbfKernel(0.7)(X, X)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_decays_with_distance(self):
        x = np.array([[0.0, 0.0]])
        near = RbfKernel(0.5)(x, np.array([[0.1, 0.0]]))[0, 0]
        far = RbfKernel(0.5)(x, np.array([[5.0, 0.0]]))[0, 0]
        assert near > far

    def test_known_value(self):
        K = RbfKernel(1.0)(np.array([[0.0]]), np.array([[1.0]]))
        assert K[0, 0] == pytest.approx(np.exp(-1.0))

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            RbfKernel(-1.0)

    @given(X=small_matrices)
    def test_symmetric_gram(self, X):
        K = RbfKernel(0.5)(X, X)
        np.testing.assert_allclose(K, K.T, atol=1e-12)

    @given(X=small_matrices)
    def test_values_in_unit_interval(self, X):
        K = RbfKernel(0.5)(X, X)
        assert np.all(K >= 0.0)
        assert np.all(K <= 1.0 + 1e-12)

    @given(X=small_matrices)
    def test_gram_positive_semidefinite(self, X):
        K = RbfKernel(0.5)(X, X)
        eigenvalues = np.linalg.eigvalsh((K + K.T) / 2.0)
        assert np.all(eigenvalues >= -1e-8)
