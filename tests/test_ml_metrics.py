"""Tests for accuracy and the confusion matrix."""

import numpy as np
import pytest

from repro.ml.metrics import ConfusionMatrix, accuracy_score


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score(["a", "b"], ["a", "b"]) == 1.0

    def test_half(self):
        assert accuracy_score(["a", "b"], ["a", "c"]) == 0.5

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            accuracy_score(["a"], ["a", "b"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def simple(self):
        y_true = ["k", "k", "k", "l", "l", "o"]
        y_pred = ["k", "k", "l", "l", "l", "k"]
        return ConfusionMatrix(y_true, y_pred, labels=["k", "l", "o"])

    def test_total(self):
        assert self.simple().total == 6

    def test_accuracy(self):
        assert self.simple().accuracy == pytest.approx(4 / 6)

    def test_count(self):
        cm = self.simple()
        assert cm.count("k", "k") == 2
        assert cm.count("k", "l") == 1
        assert cm.count("o", "k") == 1

    def test_false_positives(self):
        """FP for k: predicted k while truly elsewhere (the 'o')."""
        assert self.simple().false_positives("k") == 1

    def test_false_negatives(self):
        """FN for k: truly k but predicted elsewhere."""
        assert self.simple().false_negatives("k") == 1

    def test_precision_recall(self):
        cm = self.simple()
        assert cm.precision("k") == pytest.approx(2 / 3)
        assert cm.recall("k") == pytest.approx(2 / 3)

    def test_f1(self):
        cm = self.simple()
        assert cm.f1("k") == pytest.approx(2 / 3)

    def test_precision_of_never_predicted_label(self):
        cm = ConfusionMatrix(["a", "b"], ["a", "a"], labels=["a", "b"])
        assert cm.precision("b") == 0.0

    def test_recall_of_absent_label(self):
        cm = ConfusionMatrix(["a", "a"], ["a", "b"], labels=["a", "b", "c"])
        assert cm.recall("c") == 0.0

    def test_room_fp_fn_totals_excludes_outside(self):
        cm = self.simple()
        totals = cm.room_fp_fn_totals(outside_label="o")
        # Rooms are k and l.  FP(k)=1 ('o' predicted k), FP(l)=1 (a 'k'
        # predicted l); FN(k)=1, FN(l)=0.
        assert totals == {"false_positives": 2, "false_negatives": 1}

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            ConfusionMatrix(["a"], ["a", "b"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ConfusionMatrix([], [])

    def test_rejects_unknown_labels(self):
        with pytest.raises(ValueError):
            ConfusionMatrix(["a"], ["z"], labels=["a"])

    def test_default_labels_are_sorted_union(self):
        cm = ConfusionMatrix(["b"], ["a"])
        assert cm.labels == ["a", "b"]

    def test_to_text_contains_counts(self):
        text = self.simple().to_text()
        assert "k" in text and "2" in text

    def test_matrix_sums_match_sample_count(self):
        cm = self.simple()
        assert int(cm.matrix.sum()) == 6
