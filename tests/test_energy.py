"""Tests for the energy model: battery, meter, profiles, gating, logger."""

import pytest

from repro.energy.battery import Battery
from repro.energy.gating import AccelerometerGate
from repro.energy.logger import BatteryLogger
from repro.energy.meter import EnergyMeter
from repro.energy.profiles import PHONE_ENERGY_PROFILES, PhoneEnergyProfile


class TestBattery:
    def test_full_by_default(self):
        battery = Battery(5.7)
        assert battery.soc == 1.0
        assert battery.remaining_j == pytest.approx(5.7 * 3600.0)

    def test_partial_initial_soc(self):
        assert Battery(5.7, initial_soc=0.5).soc == 0.5

    def test_drain_reduces_charge(self):
        battery = Battery(1.0)
        battery.drain(1800.0)
        assert battery.soc == pytest.approx(0.5)

    def test_drain_clamps_at_empty(self):
        battery = Battery(1.0)
        drained = battery.drain(1e9)
        assert drained == pytest.approx(3600.0)
        assert battery.is_empty
        assert battery.soc == 0.0

    def test_drain_rejects_negative(self):
        with pytest.raises(ValueError):
            Battery(1.0).drain(-1.0)

    def test_lifetime_projection(self):
        # 5.7 Wh at 0.57 W -> 10 h: the paper's headline battery life.
        assert Battery(5.7).lifetime_hours(0.57) == pytest.approx(10.0)

    def test_lifetime_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            Battery(1.0).lifetime_hours(0.0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Battery(0.0)

    def test_rejects_bad_soc(self):
        with pytest.raises(ValueError):
            Battery(1.0, initial_soc=1.5)


class TestEnergyMeter:
    def test_power_charge(self):
        meter = EnergyMeter()
        meter.charge_power("cpu", 0.5, 10.0)
        assert meter.total_j == pytest.approx(5.0)

    def test_components_tracked_separately(self):
        meter = EnergyMeter()
        meter.charge_power("cpu", 1.0, 2.0)
        meter.charge_energy("radio", 3.0)
        breakdown = meter.breakdown()
        assert breakdown.components_j == {"cpu": 2.0, "radio": 3.0}

    def test_average_power(self):
        meter = EnergyMeter()
        meter.advance(10.0)
        meter.charge_energy("cpu", 5.0)
        assert meter.breakdown().average_power_w == pytest.approx(0.5)

    def test_average_power_zero_duration(self):
        meter = EnergyMeter()
        meter.charge_energy("cpu", 5.0)
        assert meter.breakdown().average_power_w == 0.0

    def test_fraction(self):
        meter = EnergyMeter()
        meter.charge_energy("a", 3.0)
        meter.charge_energy("b", 1.0)
        assert meter.breakdown().fraction("a") == pytest.approx(0.75)
        assert meter.breakdown().fraction("zzz") == 0.0

    def test_battery_drained_in_step(self):
        battery = Battery(1.0)
        meter = EnergyMeter(battery)
        meter.charge_energy("cpu", 360.0)
        assert battery.soc == pytest.approx(0.9)

    def test_reset(self):
        meter = EnergyMeter()
        meter.charge_energy("cpu", 1.0)
        meter.advance(5.0)
        meter.reset()
        assert meter.total_j == 0.0
        assert meter.duration_s == 0.0

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            EnergyMeter().charge_power("x", -1.0, 1.0)

    def test_rejects_negative_energy(self):
        with pytest.raises(ValueError):
            EnergyMeter().charge_energy("x", -1.0)

    def test_breakdown_to_text(self):
        meter = EnergyMeter()
        meter.charge_energy("radio", 2.0)
        assert "radio" in meter.breakdown().to_text()


class TestProfiles:
    def test_s3_mini_battery_matches_hardware(self):
        # 1500 mAh at 3.8 V.
        assert PHONE_ENERGY_PROFILES["s3_mini"].battery_wh == pytest.approx(5.7)

    def test_battery_joules(self):
        profile = PHONE_ENERGY_PROFILES["s3_mini"]
        assert profile.battery_j == pytest.approx(5.7 * 3600.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            PhoneEnergyProfile(name="x", battery_wh=5.0, baseline_w=-1.0, ble_scan_w=0.1)


class TestAccelerometerGate:
    def test_senses_while_moving(self):
        gate = AccelerometerGate(lambda t: True)
        assert gate.should_sense(0.0)
        assert gate.suppression_ratio == 0.0

    def test_suppresses_after_grace(self):
        gate = AccelerometerGate(lambda t: False, grace_period_s=5.0)
        assert not gate.should_sense(100.0)
        assert gate.cycles_suppressed == 1

    def test_grace_period_keeps_sensing(self):
        moving_until = 10.0
        gate = AccelerometerGate(lambda t: t < moving_until, grace_period_s=5.0)
        assert gate.should_sense(9.0)       # moving
        assert gate.should_sense(12.0)      # within grace of t=9
        assert not gate.should_sense(20.0)  # grace expired

    def test_motion_resumption_reopens_gate(self):
        calls = {"moving": False}
        gate = AccelerometerGate(lambda t: calls["moving"], grace_period_s=1.0)
        assert not gate.should_sense(10.0)
        calls["moving"] = True
        assert gate.should_sense(11.0)

    def test_suppression_ratio(self):
        # Moving for t < 4 (cycles 0-3 allowed); with zero grace the
        # remaining 6 of 10 cycles are suppressed.
        gate = AccelerometerGate(lambda t: t < 4.0, grace_period_s=0.0)
        for t in range(10):
            gate.should_sense(float(t))
        assert gate.suppression_ratio == pytest.approx(0.6)

    def test_rejects_negative_grace(self):
        with pytest.raises(ValueError):
            AccelerometerGate(lambda t: True, grace_period_s=-1.0)


class TestBatteryLogger:
    def test_samples_at_period(self):
        battery = Battery(5.7)
        logger = BatteryLogger(battery, period_s=10.0)
        logger.maybe_sample(0.0)
        battery.drain(100.0)
        logger.maybe_sample(25.0)
        times = [e.time for e in logger.entries]
        assert times == [0.0, 10.0, 20.0]

    def test_average_power_from_discharge(self):
        battery = Battery(5.7)
        logger = BatteryLogger(battery, period_s=10.0)
        logger.maybe_sample(0.0)
        battery.drain(57.0)
        logger.maybe_sample(100.0)
        assert logger.average_power_w() == pytest.approx(57.0 / 100.0, rel=0.15)

    def test_average_power_needs_two_samples(self):
        logger = BatteryLogger(Battery(1.0))
        logger.maybe_sample(0.0)
        with pytest.raises(ValueError):
            logger.average_power_w()

    def test_discharge_series_monotone(self):
        battery = Battery(1.0)
        logger = BatteryLogger(battery, period_s=1.0)
        for t in range(5):
            logger.maybe_sample(float(t))
            battery.drain(10.0)
        socs = [s for _, s in logger.discharge_series()]
        assert socs == sorted(socs, reverse=True)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            BatteryLogger(Battery(1.0), period_s=0.0)
