"""Tests for per-device receiver profiles (paper Figure 11 substrate)."""

import pytest

from repro.radio.devices import DEVICE_PROFILES, DeviceRadioProfile


class TestProfiles:
    def test_paper_devices_present(self):
        assert "s3_mini" in DEVICE_PROFILES
        assert "nexus_5" in DEVICE_PROFILES

    def test_s3_mini_is_the_zero_gain_reference(self):
        assert DEVICE_PROFILES["s3_mini"].rx_gain_db == 0.0

    def test_nexus5_reports_stronger_rssi(self):
        assert DEVICE_PROFILES["nexus_5"].rx_gain_db > DEVICE_PROFILES["s3_mini"].rx_gain_db

    def test_s3_mini_has_buggy_stack(self):
        """Paper: 'the adapter sometimes looses some samples'."""
        assert DEVICE_PROFILES["s3_mini"].extra_loss_prob > 0.05

    def test_ideal_device_is_noise_free(self):
        ideal = DEVICE_PROFILES["ideal"]
        assert ideal.rssi_noise_db == 0.0
        assert ideal.extra_loss_prob == 0.0
        assert ideal.rssi_quantisation_db == 0.0


class TestValidation:
    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            DeviceRadioProfile(name="x", rssi_noise_db=-1.0)

    def test_rejects_bad_loss_probability(self):
        with pytest.raises(ValueError):
            DeviceRadioProfile(name="x", extra_loss_prob=1.5)

    def test_rejects_negative_quantisation(self):
        with pytest.raises(ValueError):
            DeviceRadioProfile(name="x", rssi_quantisation_db=-0.5)


class TestQuantisation:
    def test_integer_quantisation(self):
        profile = DeviceRadioProfile(name="x", rssi_quantisation_db=1.0)
        assert profile.quantise(-63.4) == -63.0
        assert profile.quantise(-63.6) == -64.0

    def test_zero_quantisation_passthrough(self):
        profile = DeviceRadioProfile(name="x", rssi_quantisation_db=0.0)
        assert profile.quantise(-63.456) == -63.456

    def test_coarse_quantisation(self):
        profile = DeviceRadioProfile(name="x", rssi_quantisation_db=2.0)
        assert profile.quantise(-63.0) in (-62.0, -64.0)
