"""Execute the doctest examples embedded in the API docstrings.

Keeps the documentation honest: if a docstring example drifts from the
code, this module fails.
"""

import doctest

import pytest

import repro.beacon_node.node
import repro.filters.tracker
import repro.server.rest
import repro.sim.engine
import repro.sim.rng
import repro.tracking.tracker

MODULES = [
    repro.sim.engine,
    repro.sim.rng,
    repro.filters.tracker,
    repro.server.rest,
    repro.tracking.tracker,
    repro.beacon_node.node,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
