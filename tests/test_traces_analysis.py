"""Tests for trace analysis statistics."""

import pytest

from repro.building.geometry import Point
from repro.building.presets import single_room
from repro.traces.analysis import summarise_trace
from repro.traces.schema import BeaconTrace, TraceMeta, TraceRecord
from repro.traces.synth import synthesize_static_trace


def hand_trace():
    trace = BeaconTrace(
        meta=TraceMeta(scenario="t", device="d", scan_period_s=2.0, seed=0)
    )
    trace.append(TraceRecord(
        time=2.0, device_id="d", rssi={"a": -60.0}, distance={"a": 2.0},
        true_position=(2.0, 0.0),
    ))
    trace.append(TraceRecord(
        time=4.0, device_id="d", rssi={"a": -62.0, "b": -80.0},
        distance={"a": 2.4, "b": 9.0}, true_position=(2.0, 0.0),
    ))
    trace.append(TraceRecord(
        time=6.0, device_id="d", rssi={"b": -82.0}, distance={"b": 10.0},
        true_position=(2.0, 0.0),
    ))
    return trace


class TestSummarise:
    def test_cycles_seen_and_loss(self):
        summary = summarise_trace(hand_trace())
        assert summary.n_cycles == 3
        assert summary.beacons["a"].cycles_seen == 2
        assert summary.beacons["a"].loss_rate == pytest.approx(1 / 3)
        assert summary.beacons["b"].loss_rate == pytest.approx(1 / 3)

    def test_rssi_statistics(self):
        summary = summarise_trace(hand_trace())
        assert summary.beacons["a"].rssi_mean == pytest.approx(-61.0)
        assert summary.beacons["a"].rssi_std == pytest.approx(1.0)

    def test_distance_statistics(self):
        summary = summarise_trace(hand_trace())
        assert summary.beacons["a"].distance_mean == pytest.approx(2.2)

    def test_ranging_mae_with_positions(self):
        positions = {"a": Point(0.0, 0.0)}
        summary = summarise_trace(hand_trace(), beacon_positions=positions)
        # True distance 2.0; estimates 2.0 and 2.4 -> MAE 0.2.
        assert summary.beacons["a"].ranging_mae == pytest.approx(0.2)
        assert summary.beacons["b"].ranging_mae is None

    def test_mae_none_without_positions(self):
        summary = summarise_trace(hand_trace())
        assert summary.beacons["a"].ranging_mae is None

    def test_worst_loss_rate(self):
        assert summarise_trace(hand_trace()).worst_loss_rate() == pytest.approx(1 / 3)

    def test_to_text(self):
        text = summarise_trace(hand_trace()).to_text()
        assert "a" in text and "loss" in text

    def test_on_synthetic_trace(self):
        plan = single_room()
        beacon = plan.beacons[0]
        trace = synthesize_static_trace(
            plan, Point(beacon.position.x + 2.0, beacon.position.y),
            duration_s=60.0, seed=2,
        )
        summary = summarise_trace(
            trace, beacon_positions={beacon.beacon_id: beacon.position}
        )
        stats = summary.beacons[beacon.beacon_id]
        assert stats.cycles_seen > 20
        assert stats.ranging_mae is not None
        assert stats.ranging_mae < 3.0
