"""Tests for the deterministic parallel execution engine.

The load-bearing property throughout: the shard *plan* fixes the
decomposition and the per-shard seeds, so results are identical at
every worker count — parallelism buys wall clock, never a different
answer.
"""

import numpy as np
import pytest

from repro.building.presets import two_room_corridor
from repro.fleet import FleetLoadGenerator
from repro.ml.knn import KNeighborsClassifier
from repro.ml.model_selection import GridSearch, cross_val_score
from repro.obs import MemorySink, MetricsRegistry
from repro.parallel import (
    ShardPlan,
    ShardSpec,
    available_workers,
    run_shards,
    sweep,
)
from repro.sim.rng import derive_seed


def seeded_square(spec: ShardSpec):
    """Module-level worker: picklable, depends only on the spec."""
    rng = np.random.default_rng(spec.seed)
    return (spec.payload ** 2, float(rng.random()))


def failing_worker(spec: ShardSpec):
    """Module-level worker that fails on shard 1."""
    if spec.index == 1:
        raise RuntimeError("shard 1 exploded")
    return spec.payload


def double_point(point):
    """Module-level sweep function."""
    return point * 2


def knn_factory(params):
    """Module-level estimator factory (crosses the process boundary)."""
    return KNeighborsClassifier(k=params["k"])


def dataset(n_per=30, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal((0, 0), 0.5, (n_per, 2)), rng.normal((4, 0), 0.5, (n_per, 2))]
    )
    y = np.array(["a"] * n_per + ["b"] * n_per)
    return X, y


class TestShardPlan:
    def test_create_derives_canonical_seeds(self):
        plan = ShardPlan.create("job", 42, ["a", "b", "c"])
        assert len(plan) == 3
        for i, spec in enumerate(plan.shards):
            assert spec.index == i
            assert spec.seed == derive_seed(42, f"job:shard:{i}")
        assert [s.payload for s in plan.shards] == ["a", "b", "c"]

    def test_seeds_differ_between_shards_and_plans(self):
        plan = ShardPlan.create("job", 0, [None, None])
        other = ShardPlan.create("other", 0, [None, None])
        seeds = {s.seed for s in plan.shards} | {s.seed for s in other.shards}
        assert len(seeds) == 4

    def test_split_balances_contiguously(self):
        plan = ShardPlan.split("job", 0, list(range(10)), 3)
        chunks = [s.payload for s in plan.shards]
        assert chunks == [(0, 1, 2, 3), (4, 5, 6), (7, 8, 9)]

    def test_split_caps_shards_at_item_count(self):
        plan = ShardPlan.split("job", 0, [1, 2], 8)
        assert len(plan) == 2
        assert [s.payload for s in plan.shards] == [(1,), (2,)]

    def test_split_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardPlan.split("job", 0, [1], 0)

    def test_split_empty_items_yields_one_empty_shard(self):
        plan = ShardPlan.split("job", 0, [], 4)
        assert len(plan) == 1
        assert plan.shards[0].payload == ()


class TestRunShards:
    def test_rejects_bad_worker_count(self):
        plan = ShardPlan.create("job", 0, [1])
        with pytest.raises(ValueError):
            run_shards(seeded_square, plan, workers=0)

    def test_serial_results_in_shard_order(self):
        plan = ShardPlan.create("job", 7, [2, 3, 4])
        results = run_shards(seeded_square, plan, workers=1)
        assert [r[0] for r in results] == [4, 9, 16]

    def test_parallel_equals_serial(self):
        plan = ShardPlan.create("job", 7, [2, 3, 4, 5])
        assert run_shards(seeded_square, plan, workers=1) == run_shards(
            seeded_square, plan, workers=3
        )

    def test_worker_exception_propagates(self):
        plan = ShardPlan.create("job", 0, ["a", "b"])
        with pytest.raises(RuntimeError, match="shard 1 exploded"):
            run_shards(failing_worker, plan, workers=1)
        with pytest.raises(RuntimeError, match="shard 1 exploded"):
            run_shards(failing_worker, plan, workers=2)

    def test_unpicklable_worker_falls_back_serially(self):
        plan = ShardPlan.create("job", 0, [1, 2, 3])
        with pytest.warns(RuntimeWarning, match="cannot cross a process"):
            results = run_shards(lambda spec: spec.payload * 10, plan, workers=2)
        assert results == [10, 20, 30]

    def test_available_workers_is_positive(self):
        assert available_workers() >= 1


class TestSweep:
    def test_matches_direct_evaluation(self):
        points = [1, 2, 5, 9]
        assert sweep(double_point, points) == [p * 2 for p in points]

    def test_worker_count_invariant(self):
        points = list(range(8))
        serial = sweep(double_point, points, workers=1)
        parallel = sweep(double_point, points, workers=2)
        assert serial == parallel


class TestFleetInvariance:
    """The acceptance property: identical FleetReport at any workers."""

    @staticmethod
    def _sharded_fleet(workers):
        registry = MetricsRegistry(sink=MemorySink())
        generator = FleetLoadGenerator(
            devices=2,
            duration_s=30.0,
            batch_size=4,
            batch_delay_s=8.0,
            calibration_s=120.0,
            seed=1,
            plan=two_room_corridor(),
            registry=registry,
            shards=2,
            workers=workers,
        )
        return generator.run(), registry

    def test_workers_do_not_change_the_report_or_telemetry(self):
        serial_report, serial_registry = self._sharded_fleet(workers=1)
        pooled_report, pooled_registry = self._sharded_fleet(workers=2)
        assert serial_report == pooled_report
        assert serial_registry.snapshot() == pooled_registry.snapshot()
        assert serial_registry.events == pooled_registry.events

    def test_sharded_report_aggregates_whole_fleet(self):
        report, _ = self._sharded_fleet(workers=2)
        assert report.devices == 2
        assert report.reports_ingested > 0
        assert 0.0 <= report.delivery_ratio <= 1.0
        assert report.energy_j_total > 0.0

    def test_shards_default_to_workers_and_cap_at_devices(self):
        generator = FleetLoadGenerator(devices=2, workers=8)
        assert generator.shards == 2
        pinned = FleetLoadGenerator(devices=8, workers=4, shards=2)
        assert pinned.shards == 2


class TestModelSelectionJobs:
    def test_cross_val_score_n_jobs_invariant(self):
        X, y = dataset()
        estimator = KNeighborsClassifier(k=3)
        serial = cross_val_score(estimator, X, y, n_splits=4, seed=5, n_jobs=1)
        pooled = cross_val_score(estimator, X, y, n_splits=4, seed=5, n_jobs=2)
        np.testing.assert_array_equal(serial, pooled)

    def test_grid_search_n_jobs_invariant(self):
        X, y = dataset()
        grid = {"k": [1, 3, 5]}
        serial = GridSearch(knn_factory, grid, n_splits=3, seed=2).fit(X, y)
        pooled = GridSearch(knn_factory, grid, n_splits=3, seed=2, n_jobs=2).fit(X, y)
        assert pooled.best_params_ == serial.best_params_
        assert pooled.best_score_ == serial.best_score_
        assert pooled.results_ == serial.results_

    def test_grid_search_rejects_bad_n_jobs(self):
        with pytest.raises(ValueError):
            GridSearch(knn_factory, {"k": [1]}, n_jobs=0)

    def test_lambda_factory_degrades_to_serial_same_answer(self):
        X, y = dataset()
        grid = {"k": [1, 3]}
        serial = GridSearch(knn_factory, grid, n_splits=3, seed=2).fit(X, y)
        with pytest.warns(RuntimeWarning, match="cannot cross a process"):
            pooled = GridSearch(
                lambda p: KNeighborsClassifier(k=p["k"]),
                grid,
                n_splits=3,
                seed=2,
                n_jobs=2,
            ).fit(X, y)
        assert pooled.best_params_ == serial.best_params_
        assert pooled.results_ == serial.results_
