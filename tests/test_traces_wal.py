"""Tests for the durable sighting WAL.

The log's contract is losslessness: every appended operation reads
back exactly — through rotation, process restarts and columnar
compaction — and anything that *cannot* be read back exactly (CRC
mismatch, malformed interior line) is a loud
:class:`~repro.traces.wal.WalCorruptionError`, never a silent skip.
Only a torn trailing line on the final JSONL segment (a crash
mid-append) is tolerated, because the appender never writes past it.
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.traces.wal import (
    _COLUMNAR_MIN_ROWS,
    SightingWal,
    WalCorruptionError,
    WalError,
    _header_crc,
    _header_payload,
    read_wal_records,
    wal_segment_paths,
)


def seeded_wal(directory, **kwargs):
    """A log with one of each record kind, in a fixed order."""
    wal = SightingWal(directory, **kwargs)
    wal.append_sighting("alice", {"b-1": -61.25, "b-2": -74.0}, 1.0)
    wal.append_batch(
        [
            {"device_id": "bob", "beacons": {"b-1": -55.5}, "time": 2.0},
            {"device_id": "carol", "beacons": {"b-2": -80.125}, "time": 2.5},
        ]
    )
    wal.append_history_mark(3.0)
    wal.append_refresh(
        [{"room": "kitchen", "beacons": {"b-1": -58.0}, "time": 4.0}],
        4.0,
    )
    return wal


class TestRoundTrip:
    def test_all_kinds_read_back_exactly(self, tmp_path):
        wal = seeded_wal(tmp_path / "wal")
        records = list(wal.records())
        assert [r.kind for r in records] == [
            "sighting",
            "batch",
            "history",
            "refresh",
        ]
        assert records[0].sightings == (
            {
                "device_id": "alice",
                "beacons": {"b-1": -61.25, "b-2": -74.0},
                "time": 1.0,
            },
        )
        assert records[1].sightings[1]["device_id"] == "carol"
        assert records[2].time == 3.0
        assert records[3].fingerprints == (
            {"room": "kitchen", "beacons": {"b-1": -58.0}, "time": 4.0},
        )

    def test_seq_is_monotonic_from_zero(self, tmp_path):
        wal = seeded_wal(tmp_path / "wal")
        assert [r.seq for r in wal.records()] == [0, 1, 2, 3]

    def test_empty_appends_rejected(self, tmp_path):
        wal = SightingWal(tmp_path / "wal")
        with pytest.raises(ValueError):
            wal.append_batch([])
        with pytest.raises(ValueError):
            wal.append_refresh([], 1.0)

    def test_append_after_close_errors(self, tmp_path):
        wal = SightingWal(tmp_path / "wal")
        wal.append_sighting("alice", {"b-1": -60.0}, 1.0)
        wal.close()
        with pytest.raises(WalError):
            wal.append_sighting("alice", {"b-1": -60.0}, 2.0)

    def test_context_manager_seals(self, tmp_path):
        with SightingWal(tmp_path / "wal") as wal:
            wal.append_sighting("alice", {"b-1": -60.0}, 1.0)
        assert len(list(read_wal_records(tmp_path / "wal"))) == 1


class TestRotationAndResume:
    def test_small_threshold_rotates_segments(self, tmp_path):
        wal = SightingWal(tmp_path / "wal", segment_bytes=256)
        for i in range(20):
            wal.append_sighting(f"dev-{i:02d}", {"b-1": -60.0 - i}, float(i))
        wal.flush()
        paths = wal.segment_paths()
        assert len(paths) > 1
        assert [r.seq for r in wal.records()] == list(range(20))

    def test_reopen_resumes_after_last_record(self, tmp_path):
        directory = tmp_path / "wal"
        first = seeded_wal(directory)
        first.close()
        second = SightingWal(directory)
        second.append_sighting("dave", {"b-1": -70.0}, 5.0)
        second.flush()
        records = list(read_wal_records(directory))
        assert [r.seq for r in records] == [0, 1, 2, 3, 4]
        assert records[-1].sightings[0]["device_id"] == "dave"
        # Resume opens a fresh segment; the old one is never appended to.
        assert len(wal_segment_paths(directory)) == 2

    def test_resume_after_torn_tail_skips_the_torn_seq(self, tmp_path):
        directory = tmp_path / "wal"
        wal = seeded_wal(directory)
        wal.flush()
        path = wal.segment_paths()[-1]
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"seq": 4, "kind": "sighting", "tim')
        resumed = SightingWal(directory)
        seq = resumed.append_sighting("erin", {"b-1": -60.0}, 6.0)
        # The torn record was never durable, so its seq is reused.
        assert seq == 4

    def test_log_stays_readable_after_torn_tail_resume(self, tmp_path):
        # Crash mid-append, resume (which makes the torn segment an
        # interior one), append more: the whole log — including the
        # repaired segment — must read back and compact cleanly.
        directory = tmp_path / "wal"
        wal = seeded_wal(directory)
        wal.flush()
        path = wal.segment_paths()[-1]
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"seq": 4, "kind": "sighting", "tim')
        resumed = SightingWal(directory)
        resumed.append_sighting("erin", {"b-1": -60.0}, 6.0)
        assert [r.seq for r in resumed.records()] == [0, 1, 2, 3, 4]
        assert resumed.compact() == 1
        assert [r.seq for r in resumed.records()] == [0, 1, 2, 3, 4]
        resumed.close()
        assert [r.seq for r in read_wal_records(directory)] == [0, 1, 2, 3, 4]

    def test_repeated_crash_resume_cycles_stay_readable(self, tmp_path):
        directory = tmp_path / "wal"
        for cycle in range(3):
            wal = SightingWal(directory)
            wal.append_sighting(f"dev-{cycle}", {"b-1": -60.0}, float(cycle))
            wal.flush()
            path = wal.segment_paths()[-1]
            # Simulate a crash mid-append: torn line, no close().
            with path.open("a", encoding="utf-8") as fh:
                fh.write('{"seq": 99, "kind": "b')
        assert [r.seq for r in read_wal_records(directory)] == [0, 1, 2]

    def test_fully_torn_segment_is_removed_on_resume(self, tmp_path):
        # A crash mid-header leaves a segment with nothing durable in
        # it; resume drops the file instead of tripping over it later.
        directory = tmp_path / "wal"
        wal = seeded_wal(directory)
        wal.close()
        torn = directory / "segment-000001.jsonl"
        torn.write_text('{"kind": "wal-head', encoding="utf-8")
        resumed = SightingWal(directory)
        assert resumed.append_history_mark(9.0) == 4
        assert [r.seq for r in resumed.records()] == [0, 1, 2, 3, 4]

    def test_resume_after_record_less_sealed_segment(self, tmp_path):
        # A header-only JSONL segment (a torn-tail repair can leave
        # one) still compacts; resuming on the resulting record-less
        # .npz must read base_seq from the embedded header, not reopen
        # the binary file as JSONL.
        directory = tmp_path / "wal"
        wal = seeded_wal(directory)
        wal.close()
        payload = _header_payload(1, 4)
        line = json.dumps(
            {**payload, "crc": _header_crc(payload)}, separators=(",", ":")
        )
        (directory / "segment-000001.jsonl").write_text(
            line + "\n", encoding="utf-8"
        )
        maintenance = SightingWal(directory)
        assert maintenance.compact() == 2
        maintenance.close()
        resumed = SightingWal(directory)
        assert resumed.append_history_mark(9.0) == 4

    def test_appends_are_durable_without_explicit_flush(self, tmp_path):
        # Acknowledged appends must reach the OS before the caller
        # proceeds — a process crash (no flush/close) loses nothing.
        directory = tmp_path / "wal"
        wal = SightingWal(directory)
        wal.append_sighting("alice", {"b-1": -60.0}, 1.0)
        wal.append_batch(
            [{"device_id": "bob", "beacons": {"b-1": -55.0}, "time": 2.0}]
        )
        # Read through a fresh handle, never flushing or closing.
        assert [r.seq for r in read_wal_records(directory)] == [0, 1]

    def test_fsync_mode_appends_and_reads_back(self, tmp_path):
        wal = SightingWal(tmp_path / "wal", fsync=True)
        wal.append_sighting("alice", {"b-1": -60.0}, 1.0)
        wal.flush()
        assert [r.seq for r in wal.records()] == [0]


class TestCorruption:
    def test_header_crc_mismatch_raises(self, tmp_path):
        wal = seeded_wal(tmp_path / "wal")
        wal.flush()
        path = wal.segment_paths()[0]
        lines = path.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        header["crc"] = (header["crc"] + 1) & 0xFFFFFFFF
        lines[0] = json.dumps(header, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(WalCorruptionError, match="CRC"):
            list(read_wal_records(tmp_path / "wal"))

    def test_torn_tail_on_final_segment_is_tolerated(self, tmp_path):
        wal = seeded_wal(tmp_path / "wal")
        wal.flush()
        path = wal.segment_paths()[-1]
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"seq": 4, "kind": "sight')
        assert [r.seq for r in read_wal_records(tmp_path / "wal")] == [
            0,
            1,
            2,
            3,
        ]

    def test_malformed_interior_line_raises(self, tmp_path):
        wal = seeded_wal(tmp_path / "wal")
        wal.flush()
        path = wal.segment_paths()[-1]
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[2] = lines[2][:-5]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(WalCorruptionError, match="malformed"):
            list(read_wal_records(tmp_path / "wal"))

    def test_unknown_record_kind_raises(self, tmp_path):
        wal = seeded_wal(tmp_path / "wal")
        wal.flush()
        path = wal.segment_paths()[-1]
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"seq": 4, "kind": "mystery", "time": 9.0}\n')
            fh.write('{"seq": 5, "kind": "history", "time": 10.0}\n')
        with pytest.raises(WalCorruptionError, match="mystery"):
            list(read_wal_records(tmp_path / "wal"))

    def test_duplicate_segment_index_raises(self, tmp_path):
        directory = tmp_path / "wal"
        wal = seeded_wal(directory)
        wal.close()
        wal2 = SightingWal(directory)
        wal2.compact()
        sealed = next(
            p for p in wal2.segment_paths() if p.suffix == ".npz"
        )
        # Simulate a crashed compaction: both encodings on disk.
        sealed.with_suffix(".jsonl").write_text("", encoding="utf-8")
        with pytest.raises(WalCorruptionError, match="both"):
            wal_segment_paths(directory)


class TestCompaction:
    def test_compaction_is_lossless(self, tmp_path):
        directory = tmp_path / "wal"
        wal = seeded_wal(directory, segment_bytes=128)
        # Irrational-ish floats: bit-exactness must survive the npz.
        wal.append_sighting("frank", {"b-1": -60.1234567890123}, 7.5)
        before = list(wal.records())
        wal.close()
        reopened = SightingWal(directory)
        compacted = reopened.compact()
        assert compacted >= 1
        after = list(reopened.records())
        assert after == before
        assert any(p.suffix == ".npz" for p in reopened.segment_paths())

    def test_compaction_skips_the_active_segment(self, tmp_path):
        wal = seeded_wal(tmp_path / "wal")
        wal.flush()
        assert wal.compact() == 0
        assert all(p.suffix == ".jsonl" for p in wal.segment_paths())

    def test_long_identifiers_survive_compaction(self, tmp_path):
        # Device ids, rooms and beacon names longer than any fixed
        # string dtype must round-trip uncut through the .npz columns.
        directory = tmp_path / "wal"
        device = "device-" + "x" * 90
        beacon = "beacon-" + "y" * 90
        room = "room-" + "z" * 90
        wal = SightingWal(directory)
        wal.append_sighting(device, {beacon: -61.5}, 1.0)
        wal.append_refresh(
            [{"room": room, "beacons": {beacon: -58.0}, "time": 2.0}], 2.0
        )
        before = list(wal.records())
        wal.close()
        reopened = SightingWal(directory)
        assert reopened.compact() == 1
        after = list(reopened.records())
        assert after == before
        assert after[0].sightings[0]["device_id"] == device
        assert after[0].sightings[0]["beacons"] == {beacon: -61.5}
        assert after[1].fingerprints[0]["room"] == room

    def test_resume_after_compaction(self, tmp_path):
        directory = tmp_path / "wal"
        wal = seeded_wal(directory)
        wal.close()
        reopened = SightingWal(directory)
        reopened.compact()
        third = SightingWal(directory)
        assert third.append_history_mark(9.0) == 4


class TestTelemetryAndDescribe:
    def test_counters_track_appends(self, tmp_path):
        registry = MetricsRegistry()
        wal = seeded_wal(tmp_path / "wal", registry=registry)
        records = registry.counter("wal.records")
        assert records.value == 4.0
        assert records.value_for(kind="sighting") == 1.0
        assert records.value_for(kind="batch") == 1.0
        assert records.value_for(kind="history") == 1.0
        assert records.value_for(kind="refresh") == 1.0
        assert registry.counter("wal.sightings").value == 3.0
        wal.close()
        assert registry.counter("wal.segments_sealed").value == 1.0

    def test_describe_reports_shape(self, tmp_path):
        wal = seeded_wal(tmp_path / "wal")
        described = wal.describe()
        assert described["segments"] == 1
        assert described["compacted_segments"] == 0
        assert described["next_seq"] == 4
        assert described["records_appended"] == 4
        assert described["sightings_appended"] == 3
        assert described["active_bytes"] > 0

    def test_segment_bytes_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SightingWal(tmp_path / "wal", segment_bytes=0)


class TestColumnarBatches:
    """Batches at/above the columnar threshold pack the float arrays
    as base64 of their raw bytes; the decode must be bit-exact and
    tolerate ragged per-row beacon sets via the packed-bit mask."""

    def batch(self, n, ragged=False):
        rows = []
        for i in range(n):
            beacons = {"b-1": -60.0 - 0.1234567890123 * i, "b-2": -71.5 + i}
            if ragged and i % 3 == 0:
                del beacons["b-2"]
                beacons["b-9"] = -90.0625
            rows.append(
                {"device_id": f"dev-{i}", "beacons": beacons, "time": float(i)}
            )
        return rows

    def assert_round_trip(self, tmp_path, rows):
        wal = SightingWal(tmp_path / "wal")
        wal.append_batch(rows)
        wal.close()
        (record,) = wal.records()
        assert record.kind == "batch"
        assert len(record.sightings) == len(rows)
        for got, want in zip(record.sightings, rows):
            assert got["device_id"] == want["device_id"]
            assert got["time"] == want["time"]
            assert got["beacons"] == {
                str(b): float(v) for b, v in want["beacons"].items()
            }

    def test_uniform_keys_round_trip_bit_exact(self, tmp_path):
        rows = self.batch(_COLUMNAR_MIN_ROWS)
        self.assert_round_trip(tmp_path, rows)
        wal_file = next(iter(wal_segment_paths(tmp_path / "wal")))
        line = wal_file.read_text().splitlines()[1]
        assert '"v64"' in line and '"m64"' not in line

    def test_ragged_keys_use_the_mask(self, tmp_path):
        rows = self.batch(_COLUMNAR_MIN_ROWS + 3, ragged=True)
        self.assert_round_trip(tmp_path, rows)
        wal_file = next(iter(wal_segment_paths(tmp_path / "wal")))
        assert '"m64"' in wal_file.read_text()

    def test_small_batches_stay_inline(self, tmp_path):
        rows = self.batch(_COLUMNAR_MIN_ROWS - 1)
        self.assert_round_trip(tmp_path, rows)
        wal_file = next(iter(wal_segment_paths(tmp_path / "wal")))
        assert '"v64"' not in wal_file.read_text()

    def test_newline_device_id_falls_back_to_inline(self, tmp_path):
        rows = self.batch(_COLUMNAR_MIN_ROWS)
        rows[2]["device_id"] = "dev\n2"
        self.assert_round_trip(tmp_path, rows)
        wal_file = next(iter(wal_segment_paths(tmp_path / "wal")))
        assert '"v64"' not in wal_file.read_text()

    def test_corrupt_columnar_payload_is_loud(self, tmp_path):
        wal = SightingWal(tmp_path / "wal")
        wal.append_batch(self.batch(_COLUMNAR_MIN_ROWS))
        wal.close()
        path = next(iter(wal_segment_paths(tmp_path / "wal")))
        header, line = path.read_text().splitlines()
        row = json.loads(line)
        row["n"] = 99
        path.write_text(header + "\n" + json.dumps(row) + "\n")
        # A sealed read (non-final torn tolerance does not apply to
        # well-formed-but-inconsistent columnar rows).
        with pytest.raises(WalCorruptionError):
            list(read_wal_records(tmp_path / "wal"))

    def test_compaction_of_columnar_batches_is_lossless(self, tmp_path):
        wal = SightingWal(tmp_path / "wal", segment_bytes=1)
        wal.append_batch(self.batch(_COLUMNAR_MIN_ROWS, ragged=True))
        wal.append_history_mark(99.0)
        before = [
            (r.kind, r.seq, r.time, r.sightings) for r in wal.records()
        ]
        wal.compact()
        after = [
            (r.kind, r.seq, r.time, r.sightings) for r in wal.records()
        ]
        assert after == before
        wal.close()
