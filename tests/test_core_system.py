"""Integration tests for the full occupancy-detection system."""

import pytest

from repro.building.geometry import Point
from repro.building.mobility import StaticPosition
from repro.building.occupant import Occupant
from repro.building.presets import test_house as make_test_house
from repro.core.config import SystemConfig
from repro.core.system import OccupancyDetectionSystem


@pytest.fixture(scope="module")
def trained_system():
    """A calibrated + trained system on the test house (module-scoped:
    training the SVM takes a second or two)."""
    plan = make_test_house()
    system = OccupancyDetectionSystem(plan, SystemConfig(seed=7))
    system.calibrate(duration_s=700.0)
    system.train()
    return system


class TestLifecycleGuards:
    def test_requires_beacons(self):
        from repro.building.floorplan import FloorPlan, Room

        bare = FloorPlan([Room("a", 0, 0, 1, 1)])
        with pytest.raises(ValueError):
            OccupancyDetectionSystem(bare)

    def test_run_without_occupants_rejected(self, trained_system):
        with pytest.raises(RuntimeError):
            trained_system.run(10.0)

    def test_run_without_training_rejected(self):
        plan = make_test_house()
        system = OccupancyDetectionSystem(plan, SystemConfig(seed=1))
        system.add_occupant(
            Occupant("bob", StaticPosition(Point(3.0, 2.5)))
        )
        with pytest.raises(RuntimeError):
            system.run(10.0)

    def test_duplicate_occupant_rejected(self, trained_system):
        name = "duplicate-test"
        trained_system.add_occupant(
            Occupant(name, StaticPosition(Point(3.0, 2.5)))
        )
        with pytest.raises(ValueError):
            trained_system.add_occupant(
                Occupant(name, StaticPosition(Point(1.0, 1.0)))
            )


class TestStaticDetection:
    def test_static_occupant_detected_in_right_room(self):
        plan = make_test_house()
        system = OccupancyDetectionSystem(plan, SystemConfig(seed=3))
        system.calibrate(duration_s=700.0)
        system.train()
        # Stand in the middle of the living room.
        system.add_occupant(Occupant("alice", StaticPosition(Point(3.0, 2.5))))
        run = system.run(120.0)
        assert run.accuracy > 0.8
        assert run.confusion is not None

    def test_energy_metered_per_occupant(self):
        plan = make_test_house()
        system = OccupancyDetectionSystem(plan, SystemConfig(seed=3))
        system.calibrate(duration_s=700.0)
        system.train()
        system.add_occupant(Occupant("alice", StaticPosition(Point(3.0, 2.5))))
        run = system.run(60.0)
        breakdown = run.energy["alice"]
        assert breakdown.total_j > 0.0
        assert "baseline" in breakdown.components_j
        assert "ble_scan" in breakdown.components_j

    def test_delivery_stats_present(self):
        plan = make_test_house()
        system = OccupancyDetectionSystem(plan, SystemConfig(seed=3))
        system.calibrate(duration_s=700.0)
        system.train()
        system.add_occupant(Occupant("alice", StaticPosition(Point(3.0, 2.5))))
        run = system.run(60.0)
        assert run.delivery["alice"].attempts > 0

    def test_predictions_recorded(self):
        plan = make_test_house()
        system = OccupancyDetectionSystem(plan, SystemConfig(seed=3))
        system.calibrate(duration_s=700.0)
        system.train()
        system.add_occupant(Occupant("alice", StaticPosition(Point(3.0, 2.5))))
        run = system.run(60.0)
        assert len(run.predictions["alice"]) == 30  # 60 s / 2 s cycles


class TestConfigurations:
    @pytest.mark.parametrize("classifier", ["proximity", "knn", "naive_bayes"])
    def test_alternative_classifiers_work(self, classifier):
        plan = make_test_house()
        system = OccupancyDetectionSystem(
            plan, SystemConfig(seed=5, classifier=classifier)
        )
        system.calibrate(duration_s=500.0)
        system.train()
        system.add_occupant(Occupant("a", StaticPosition(Point(3.0, 2.5))))
        run = system.run(40.0)
        assert run.accuracy >= 0.5

    def test_wifi_uplink_costs_more_than_bluetooth(self):
        results = {}
        for uplink in ("wifi", "bluetooth"):
            plan = make_test_house()
            system = OccupancyDetectionSystem(
                plan, SystemConfig(seed=5, uplink=uplink)
            )
            system.calibrate(duration_s=500.0)
            system.train()
            system.add_occupant(Occupant("a", StaticPosition(Point(3.0, 2.5))))
            run = system.run(120.0)
            results[uplink] = run.energy["a"].average_power_w
        assert results["wifi"] > results["bluetooth"]

    def test_accel_gating_saves_energy_for_static_occupant(self):
        powers = {}
        for gating in (False, True):
            plan = make_test_house()
            system = OccupancyDetectionSystem(
                plan, SystemConfig(seed=5, accel_gating=gating)
            )
            system.calibrate(duration_s=500.0)
            system.train()
            system.add_occupant(Occupant("a", StaticPosition(Point(3.0, 2.5))))
            run = system.run(120.0)
            powers[gating] = run.energy["a"].average_power_w
        assert powers[True] < powers[False]

    def test_ios_platform_runs(self):
        plan = make_test_house()
        system = OccupancyDetectionSystem(
            plan, SystemConfig(seed=5, platform="ios")
        )
        system.calibrate(duration_s=500.0)
        system.train()
        system.add_occupant(Occupant("a", StaticPosition(Point(3.0, 2.5))))
        run = system.run(40.0)
        assert run.accuracy > 0.5


class TestBatteryLifeProjection:
    def test_battery_life_in_paper_band(self):
        """~10 h on the S3 Mini battery (paper Section VII)."""
        plan = make_test_house()
        system = OccupancyDetectionSystem(
            plan, SystemConfig(seed=5, uplink="wifi")
        )
        system.calibrate(duration_s=500.0)
        system.train()
        system.add_occupant(Occupant("a", StaticPosition(Point(3.0, 2.5))))
        run = system.run(300.0)
        life = run.battery_life_hours("a", battery_wh=5.7)
        assert 8.0 < life < 13.0
