"""Smoke + shape tests for the per-figure experiment functions.

The benchmarks run the full-size experiments; these tests run scaled-
down versions and assert the qualitative shapes the paper reports.
"""

import numpy as np
import pytest

from repro.core.experiments import (
    classification_experiment,
    cross_device_experiment,
    device_offset_experiment,
    dynamic_filter_experiment,
    scan_semantics_experiment,
    static_signal_experiment,
)


class TestStaticSignal:
    def test_longer_scan_period_reduces_spread(self):
        """Figure 4 vs Figure 6."""
        spreads_2s, spreads_5s = [], []
        for seed in range(4):
            spreads_2s.append(
                static_signal_experiment(scan_period_s=2.0, seed=seed).std_m
            )
            spreads_5s.append(
                static_signal_experiment(scan_period_s=5.0, seed=seed).std_m
            )
        assert np.mean(spreads_5s) < np.mean(spreads_2s)

    def test_filter_reduces_spread(self):
        """Figure 5 vs Figure 4."""
        raw = static_signal_experiment(scan_period_s=2.0, seed=1)
        filtered = static_signal_experiment(
            scan_period_s=2.0, coefficient=0.65, seed=1
        )
        assert filtered.std_m < raw.std_m

    def test_estimates_near_true_distance(self):
        result = static_signal_experiment(distance_m=2.0, seed=1)
        assert 0.5 < result.mean_m < 5.0

    def test_loss_ratio_bounded(self):
        result = static_signal_experiment(seed=1)
        assert 0.0 <= result.loss_ratio < 0.6

    def test_result_metrics(self):
        result = static_signal_experiment(seed=1, duration_s=60.0)
        assert result.mean_abs_error_m >= 0.0
        assert len(result.times) == len(result.distances)


class TestDynamicFilter:
    @pytest.fixture(scope="class")
    def sweep(self):
        return dynamic_filter_experiment(
            coefficients=(0.0, 0.65, 0.9), seed=2
        )

    def test_lag_increases_with_coefficient(self, sweep):
        lags = {r.coefficient: r.handover_lag_s for r in sweep}
        assert lags[0.9] >= lags[0.0]

    def test_stability_improves_with_coefficient(self, sweep):
        stds = {r.coefficient: r.static_std_m for r in sweep}
        assert stds[0.9] < stds[0.0]

    def test_paper_coefficient_is_balanced(self, sweep):
        """0.65 must not be the worst on either axis (the trade-off)."""
        by_coeff = {r.coefficient: r for r in sweep}
        lags = [r.handover_lag_s for r in sweep]
        stds = [r.static_std_m for r in sweep]
        assert by_coeff[0.65].handover_lag_s < max(lags)
        assert by_coeff[0.65].static_std_m < max(stds)


class TestClassification:
    @pytest.fixture(scope="class")
    def result(self):
        return classification_experiment(
            seeds=(3,), train_points_per_room=4, test_points_per_room=3,
            dwell_s=16.0,
        )

    def test_svm_beats_proximity(self, result):
        """The paper's headline: ~94 % vs ~84 %."""
        assert result.accuracies["svm"] > result.accuracies["proximity"]

    def test_svm_accuracy_in_paper_band(self, result):
        assert 0.85 <= result.accuracies["svm"] <= 1.0

    def test_proximity_accuracy_in_paper_band(self, result):
        assert 0.70 <= result.accuracies["proximity"] <= 0.95

    def test_confusion_matrix_covers_all_labels(self, result):
        assert "outside" in result.svm_confusion.labels

    def test_fp_fn_counted(self, result):
        assert result.false_positives >= 0
        assert result.false_negatives >= 0

    def test_sample_counts_reported(self, result):
        assert result.n_train > result.n_test > 0


class TestDeviceOffsets:
    def test_nexus5_reports_stronger_rssi(self):
        """Figure 11: a clear gap between the two handsets."""
        result = device_offset_experiment(n_cycles=40, seed=3)
        gap = result.gap_db("nexus_5", "s3_mini")
        assert 3.0 < gap < 10.0

    def test_gap_is_antisymmetric(self):
        result = device_offset_experiment(n_cycles=20, seed=3)
        assert result.gap_db("nexus_5", "s3_mini") == pytest.approx(
            -result.gap_db("s3_mini", "nexus_5")
        )

    def test_std_reported(self):
        result = device_offset_experiment(n_cycles=20, seed=3)
        assert all(s >= 0.0 for s in result.std_rssi.values())


class TestCrossDevice:
    @pytest.fixture(scope="class")
    def result(self):
        return cross_device_experiment(dwell_s=16.0)

    def test_cross_device_degrades(self, result):
        """Section VIII: changing handsets hurts the trained map."""
        assert result.cross_device_accuracy < result.same_device_accuracy

    def test_offset_correction_recovers(self, result):
        """The paper's proposed mitigation must help."""
        assert result.corrected_accuracy > result.cross_device_accuracy

    def test_correction_does_not_exceed_reference(self, result):
        assert result.corrected_accuracy <= result.same_device_accuracy + 0.05


class TestScanSemantics:
    def test_paper_worked_example(self):
        """2 s scans, 30 Hz advertiser, 10 s window: 5 vs ~300."""
        result = scan_semantics_experiment()
        assert result.android_samples == 5
        assert 250 <= result.ios_samples <= 300

    def test_ratio(self):
        result = scan_semantics_experiment()
        assert result.ratio == pytest.approx(
            result.ios_samples / result.android_samples
        )

    def test_android_rate_set_by_hw_cadence_not_period(self):
        """A longer scan period aggregates more samples per estimate
        but the underlying hardware cadence (one sample per ~2 s scan
        restart) still bounds the total samples in a window."""
        slow = scan_semantics_experiment(scan_period_s=5.0)
        assert 4 <= slow.android_samples <= 6
