"""Tests for trilateration and geometric room inference."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.building.geometry import Point
from repro.building.presets import test_house as make_test_house
from repro.positioning.room_inference import GeometricRoomClassifier
from repro.positioning.trilateration import (
    TrilaterationError,
    trilaterate,
    trilaterate_fingerprint,
)

ANCHORS = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)]


def true_distances(point, anchors=ANCHORS):
    return [float(np.hypot(point[0] - a[0], point[1] - a[1])) for a in anchors]


class TestTrilaterate:
    def test_exact_distances_recover_position(self):
        target = (3.0, 4.0)
        result = trilaterate(ANCHORS, true_distances(target))
        assert result.position.x == pytest.approx(3.0, abs=1e-6)
        assert result.position.y == pytest.approx(4.0, abs=1e-6)
        assert result.rms_residual_m < 1e-6

    def test_three_anchors_sufficient(self):
        target = (2.0, 7.0)
        result = trilaterate(ANCHORS[:3], true_distances(target, ANCHORS[:3]))
        assert result.position.distance_to(Point(*target)) < 1e-5

    def test_noisy_distances_stay_close(self):
        rng = np.random.default_rng(0)
        target = (4.5, 6.0)
        noisy = [d + rng.normal(0, 0.3) for d in true_distances(target)]
        result = trilaterate(ANCHORS, noisy)
        assert result.position.distance_to(Point(*target)) < 1.5

    def test_residual_reflects_inconsistency(self):
        target = (5.0, 5.0)
        clean = trilaterate(ANCHORS, true_distances(target))
        inconsistent = trilaterate(ANCHORS, [1.0, 1.0, 1.0, 1.0])
        assert inconsistent.rms_residual_m > clean.rms_residual_m + 1.0

    def test_rejects_too_few_anchors(self):
        with pytest.raises(TrilaterationError):
            trilaterate(ANCHORS[:2], [1.0, 2.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(TrilaterationError):
            trilaterate(ANCHORS, [1.0, 2.0])

    def test_rejects_negative_distances(self):
        with pytest.raises(TrilaterationError):
            trilaterate(ANCHORS[:3], [1.0, -2.0, 3.0])

    def test_rejects_collinear_anchors(self):
        collinear = [(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)]
        with pytest.raises(TrilaterationError):
            trilaterate(collinear, [1.0, 2.0, 3.0])

    @given(
        x=st.floats(0.5, 9.5),
        y=st.floats(0.5, 9.5),
    )
    def test_roundtrip_property(self, x, y):
        result = trilaterate(ANCHORS, true_distances((x, y)))
        assert result.position.distance_to(Point(x, y)) < 1e-4


class TestTrilaterateFingerprint:
    def positions(self):
        return {
            "a": Point(0.0, 0.0),
            "b": Point(10.0, 0.0),
            "c": Point(0.0, 10.0),
        }

    def test_solves_from_fingerprint(self):
        target = Point(3.0, 3.0)
        fingerprint = {
            name: target.distance_to(p) for name, p in self.positions().items()
        }
        result = trilaterate_fingerprint(fingerprint, self.positions())
        assert result.position.distance_to(target) < 1e-5

    def test_unknown_beacons_ignored(self):
        target = Point(3.0, 3.0)
        fingerprint = {
            name: target.distance_to(p) for name, p in self.positions().items()
        }
        fingerprint["ghost"] = 1.0
        result = trilaterate_fingerprint(fingerprint, self.positions())
        assert result.position.distance_to(target) < 1e-5

    def test_too_few_usable_beacons(self):
        with pytest.raises(TrilaterationError):
            trilaterate_fingerprint({"a": 1.0, "b": 2.0}, self.positions())


class TestGeometricRoomClassifier:
    def make(self, **kwargs):
        plan = make_test_house()
        return plan, GeometricRoomClassifier(plan, plan.beacon_ids, **kwargs)

    def vector_for(self, plan, point):
        """Exact distances from a point to every beacon."""
        return np.array(
            [point.distance_to(b.position) for b in plan.beacons]
        ).reshape(1, -1)

    def test_exact_distances_give_right_room(self):
        plan, model = self.make()
        point = Point(3.0, 2.5)  # living room centre
        assert model.predict(self.vector_for(plan, point))[0] == "living"

    def test_all_missing_is_outside(self):
        plan, model = self.make(missing_value=30.0)
        row = np.full((1, len(plan.beacon_ids)), 30.0)
        assert model.predict(row)[0] == "outside"

    def test_perturbed_fill_values_still_treated_as_missing(self):
        """Regression: fill values that round-tripped through scaling
        or storage are no longer bit-equal to ``missing_value``; exact
        ``!=`` comparison mistook them for real 30 m measurements."""
        plan, model = self.make(missing_value=30.0)
        perturbed = np.full(
            (1, len(plan.beacon_ids)), np.nextafter(30.0, 31.0)
        )
        assert (perturbed != 30.0).all()  # genuinely not bit-equal
        assert model.predict(perturbed)[0] == "outside"

    def test_real_measurements_kept_alongside_fill(self):
        """Only near-fill entries drop; true distances in a partially
        missing row still reach the solver."""
        plan, model = self.make(missing_value=30.0)
        point = Point(3.0, 2.5)  # living room centre
        row = self.vector_for(plan, point)
        row[0, -1] = 30.0  # one beacon unseen, the rest genuine
        assert model.predict(row)[0] == "living"

    def test_huge_residual_is_outside(self):
        plan, model = self.make(max_residual_m=0.5)
        # Wildly inconsistent distances: all beacons 0.1 m away.
        row = np.full((1, len(plan.beacon_ids)), 0.1)
        assert model.predict(row)[0] == "outside"

    def test_rejects_wrong_width(self):
        _, model = self.make()
        with pytest.raises(ValueError):
            model.predict(np.ones((1, 2)))

    def test_wants_scaling_false(self):
        _, model = self.make()
        assert model.wants_scaling is False

    def test_score_on_exact_inputs(self):
        plan, model = self.make()
        points = {
            "living": Point(3.0, 2.5),
            "kitchen": Point(9.0, 2.0),
            "bedroom": Point(3.0, 6.5),
        }
        X = np.vstack([self.vector_for(plan, p) for p in points.values()])
        y = np.array(list(points.keys()))
        assert model.score(X, y) == 1.0

    def test_clone(self):
        _, model = self.make(max_residual_m=7.0)
        assert model.clone().max_residual_m == 7.0
