"""Tests for the fleet load generator (batched fleet-scale ingestion)."""

import pytest

from repro.building.presets import two_room_corridor
from repro.fleet import FleetLoadGenerator, FleetReport
from repro.obs import MemorySink, MetricsRegistry


def small_fleet(**kwargs):
    defaults = dict(
        devices=2,
        duration_s=30.0,
        batch_size=4,
        batch_delay_s=8.0,
        calibration_s=120.0,
        seed=1,
        plan=two_room_corridor(),
    )
    defaults.update(kwargs)
    return FleetLoadGenerator(**defaults)


@pytest.fixture(scope="module")
def fleet_report():
    return small_fleet().run()


class TestFleetLoadGenerator:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetLoadGenerator(devices=0)
        with pytest.raises(ValueError):
            FleetLoadGenerator(duration_s=0.0)

    def test_run_produces_report(self, fleet_report):
        assert isinstance(fleet_report, FleetReport)
        assert fleet_report.devices == 2
        assert fleet_report.reports_ingested > 0
        assert fleet_report.throughput_rps > 0.0
        assert 0.0 <= fleet_report.delivery_ratio <= 1.0
        assert fleet_report.energy_j_total > 0.0

    def test_batched_path_is_used(self, fleet_report):
        """The fleet must ingest through /sightings/batch: strictly
        fewer requests than reports."""
        assert fleet_report.batch_requests > 0
        assert fleet_report.requests_handled < fleet_report.reports_ingested
        assert fleet_report.mean_batch_size > 1.0

    def test_deterministic_given_seed(self, fleet_report):
        again = small_fleet().run()
        assert again == fleet_report

    def test_throughput_published_to_registry(self):
        registry = MetricsRegistry(sink=MemorySink())
        report = small_fleet(registry=registry).run()
        assert registry.gauge("fleet.devices").value == 2.0
        assert registry.gauge("fleet.throughput_rps").value == pytest.approx(
            report.throughput_rps
        )
        assert registry.gauge("fleet.reports_ingested").value == float(
            report.reports_ingested
        )

    def test_report_to_dict_roundtrips(self, fleet_report):
        payload = fleet_report.to_dict()
        assert payload["devices"] == fleet_report.devices
        assert payload["throughput_rps"] == fleet_report.throughput_rps
        assert set(payload) == {
            "devices",
            "duration_s",
            "reports_ingested",
            "batch_requests",
            "requests_handled",
            "throughput_rps",
            "mean_batch_size",
            "accuracy",
            "delivery_ratio",
            "energy_j_total",
        }

    def test_unbatched_fleet_posts_per_report(self):
        report = small_fleet(batch_size=1, seed=2).run()
        assert report.batch_requests == 0
        # One /sightings request per ingested report (plus none lost
        # here would still keep handled >= ingested).
        assert report.requests_handled >= report.reports_ingested


class TestServiceShards:
    """The sharded front door as a drop-in for the fleet's BMS."""

    def run_json(self, service_shards, **kwargs):
        import json

        generator = small_fleet(service_shards=service_shards, **kwargs)
        report = generator.run()
        snap = generator.last_occupancy
        return (
            json.dumps(report.to_dict(), sort_keys=True),
            json.dumps(
                {"time": snap.time, "rooms": snap.rooms, "devices": snap.devices},
                sort_keys=True,
            ),
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            small_fleet(service_shards=0)

    def test_sharded_service_matches_plain_store(self):
        assert self.run_json(None) == self.run_json(1)

    def test_report_and_occupancy_invariant_to_shard_count(self):
        assert self.run_json(1) == self.run_json(4)

    def test_last_occupancy_exposed_after_single_run(self):
        generator = small_fleet(service_shards=2)
        assert generator.last_occupancy is None
        generator.run()
        assert generator.last_occupancy is not None
        assert generator.last_occupancy.devices


class TestFleetWal:
    """Durable WAL runs: the directory rebuilds the exact live state."""

    def live_and_replayed(self, tmp_path, **kwargs):
        from repro.server.replay import server_from_manifest

        generator = small_fleet(wal_dir=str(tmp_path / "wal"), **kwargs)
        generator.run()
        server, report = server_from_manifest(tmp_path / "wal")
        return generator, server, report

    def test_wal_requires_unsharded_fleet(self):
        with pytest.raises(ValueError, match="unsharded"):
            small_fleet(devices=4, shards=2, wal_dir="/tmp/nope")

    @pytest.mark.parametrize("service_shards", [None, 2])
    def test_replay_recovers_snapshot_and_history(
        self, tmp_path, service_shards
    ):
        generator, server, report = self.live_and_replayed(
            tmp_path, service_shards=service_shards
        )
        live_snap = generator.last_occupancy
        snap = server.snapshot()
        assert (snap.time, snap.rooms, snap.devices) == (
            live_snap.time,
            live_snap.rooms,
            live_snap.devices,
        )
        history = (
            server.merged_history()
            if service_shards is not None
            else server.history
        )
        live_history = generator.last_history
        assert {r: history.series(r) for r in history.rooms()} == {
            r: live_history.series(r) for r in live_history.rooms()
        }
        assert report.sightings > 0

    def test_manifest_records_the_run_shape(self, tmp_path):
        from repro.server.replay import load_manifest

        self.live_and_replayed(tmp_path, service_shards=2)
        manifest = load_manifest(tmp_path / "wal")
        assert manifest["shards"] == 2
        assert manifest["seed"] == 1
        assert sorted((tmp_path / "wal").glob("shard-*")) == [
            tmp_path / "wal" / "shard-00",
            tmp_path / "wal" / "shard-01",
        ]
