"""Tests for distributed-trace reconstruction (repro.obs.trace_tree).

Unit tests drive :func:`build_tree` / :func:`critical_path` / the
renderers from hand-built tracers; the integration tests run a real
sharded fleet and assert the merged event log rebuilds into a single
tree rooted at the coordinator — byte-identically across worker
counts, which is the property the CI trace smoke pins.
"""

import json

import pytest

from repro.fleet import FleetLoadGenerator
from repro.obs import (
    MemorySink,
    MetricsRegistry,
    TraceContext,
    build_tree,
    critical_path,
    read_jsonl,
    to_jsonl,
)
from repro.obs.trace_tree import render_flame, render_tree
from repro.obs.tracing import TRACEPARENT_HEADER


def recording_registry(t0=0.0):
    clock = {"t": t0}
    registry = MetricsRegistry(sink=MemorySink(), clock=lambda: clock["t"])
    return registry, clock


class TestTraceContext:
    def test_header_round_trip(self):
        context = TraceContext("fleet-7", "shard0:3")
        assert TraceContext.from_header(context.to_header()) == context

    def test_header_round_trip_without_parent(self):
        context = TraceContext("fleet-7")
        decoded = TraceContext.from_header(context.to_header())
        assert decoded.trace_id == "fleet-7"
        assert decoded.parent_span_id is None

    def test_rejects_empty_trace_id(self):
        with pytest.raises(ValueError):
            TraceContext("")

    def test_rejects_separator_in_trace_id(self):
        with pytest.raises(ValueError):
            TraceContext("a;b")

    def test_rejects_malformed_header(self):
        with pytest.raises(ValueError):
            TraceContext.from_header("no-separator")


class TestAdoption:
    def test_namespaced_ids_and_remote_parent(self):
        registry, clock = recording_registry()
        registry.tracer.adopt(
            TraceContext("trace-1", "99"), namespace="shard0"
        )
        with registry.tracer.span("work"):
            clock["t"] = 2.0
        start = registry.sink.events[0]
        assert start.attrs["span_id"] == "shard0:1"
        assert start.attrs["parent_id"] == "99"
        assert start.attrs["trace_id"] == "trace-1"

    def test_local_stack_beats_remote_parent(self):
        registry, _ = recording_registry()
        registry.tracer.adopt(TraceContext("t", "remote"), namespace="s0")
        with registry.tracer.span("outer"):
            with registry.tracer.span("inner"):
                pass
        inner_start = registry.sink.events[2]
        assert inner_start.name == "inner"
        assert inner_start.attrs["parent_id"] == "s0:1"

    def test_unnamespaced_ids_stay_raw_ints(self):
        registry, _ = recording_registry()
        with registry.tracer.span("solo"):
            pass
        assert registry.sink.events[0].attrs["span_id"] == 1

    def test_context_reflects_innermost_open_span(self):
        registry, _ = recording_registry()
        tracer = registry.tracer
        assert tracer.context() is None
        tracer.adopt(TraceContext("t-1"), namespace="s1")
        assert tracer.context() == TraceContext("t-1", None)
        with tracer.span("outer"):
            assert tracer.context() == TraceContext("t-1", "s1:1")


class TestBuildTree:
    def make_events(self):
        registry, clock = recording_registry()
        with registry.tracer.span("root"):
            clock["t"] = 1.0
            with registry.tracer.span("a"):
                clock["t"] = 3.0
            with registry.tracer.span("b"):
                clock["t"] = 4.0
        return registry.sink.events

    def test_parentage_and_ordering(self):
        tree = build_tree(self.make_events())
        assert len(tree.roots) == 1
        root = tree.roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["a", "b"]
        assert all(c.parent_id == "1" for c in root.children)

    def test_durations_from_span_ends(self):
        tree = build_tree(self.make_events())
        root = tree.roots[0]
        assert root.duration == pytest.approx(4.0)
        assert root.children[0].duration == pytest.approx(2.0)

    def test_unclosed_span_keeps_zero_duration(self):
        registry, clock = recording_registry()
        span = registry.tracer.span("open")
        span.__enter__()
        clock["t"] = 5.0
        tree = build_tree(registry.sink.events)
        assert tree.roots[0].duration == 0.0

    def test_orphan_parent_becomes_root(self):
        registry, _ = recording_registry()
        registry.tracer.adopt(TraceContext("t", "not-in-log"), namespace="s0")
        with registry.tracer.span("detached"):
            pass
        tree = build_tree(registry.sink.events)
        assert [r.name for r in tree.roots] == ["detached"]

    def test_duplicate_span_id_rejected_loudly(self):
        first, _ = recording_registry()
        second, _ = recording_registry()
        for registry in (first, second):
            with registry.tracer.span("clash"):
                pass
        merged = first.sink.events + second.sink.events
        with pytest.raises(ValueError, match="namespace"):
            build_tree(merged)

    def test_namespacing_resolves_the_collision(self):
        events = []
        for shard in range(2):
            registry, _ = recording_registry()
            registry.tracer.adopt(
                TraceContext("t"), namespace=f"shard{shard}"
            )
            with registry.tracer.span("clash"):
                pass
            events.extend(registry.sink.events)
        tree = build_tree(events)
        assert sorted(tree.nodes) == ["shard0:1", "shard1:1"]

    def test_reserved_attrs_stripped_from_node_attrs(self):
        registry, _ = recording_registry()
        with registry.tracer.span("s", phone="alice"):
            pass
        node = build_tree(registry.sink.events).roots[0]
        assert node.attrs == {"phone": "alice"}


class TestCriticalPath:
    def test_follows_latest_finishing_children(self):
        registry, clock = recording_registry()
        with registry.tracer.span("root"):
            with registry.tracer.span("short"):
                clock["t"] = 1.0
            with registry.tracer.span("long"):
                clock["t"] = 9.0
        path = critical_path(build_tree(registry.sink.events))
        assert [n.name for n in path] == ["root", "long"]

    def test_tie_breaks_on_smaller_span_id(self):
        registry, _ = recording_registry()
        with registry.tracer.span("root"):
            with registry.tracer.span("a"):
                pass
            with registry.tracer.span("b"):
                pass
        path = critical_path(build_tree(registry.sink.events))
        assert [n.name for n in path] == ["root", "a"]

    def test_empty_tree(self):
        assert critical_path(build_tree([])) == []


class TestRenderers:
    def make_tree(self):
        registry, clock = recording_registry()
        with registry.tracer.span("root"):
            with registry.tracer.span("child"):
                clock["t"] = 10.0
        return build_tree(registry.sink.events)

    def test_render_tree_indents_children(self):
        text = render_tree(self.make_tree())
        lines = text.splitlines()
        assert lines[0].startswith("root [1]")
        assert lines[1].startswith("  child [2]")

    def test_render_flame_one_row_per_span(self):
        tree = self.make_tree()
        lines = render_flame(tree, width=40).splitlines()
        assert len(lines) == 2
        assert all(line.startswith("|") and "#" in line for line in lines)

    def test_render_flame_scales_to_extent_not_root_duration(self):
        # Coordinator roots can have zero sim-time width; the child's
        # bar must still span the full width.
        tree = self.make_tree()
        child_bar = render_flame(tree, width=40).splitlines()[1]
        assert child_bar.count("#") > 30

    def test_render_flame_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            render_flame(self.make_tree(), width=4)

    def test_empty_forest_renders_placeholder(self):
        assert render_tree(build_tree([])) == "(no spans)"
        assert render_flame(build_tree([])) == "(no spans)"


class TestTracedRequestPropagation:
    def test_uplink_header_parents_server_span(self):
        # A request carrying a traceparent header lands its
        # server.request span under the caller's current span.
        from repro.server.rest import Request, Router

        registry, _ = recording_registry()
        registry.tracer.adopt(TraceContext("t-req"), namespace="s0")
        router = Router()
        router.tracer = registry.tracer

        @router.route("POST", "/x")
        def handler(request, params):
            return {"ok": True}

        with registry.tracer.span("caller"):
            context = registry.tracer.context()
            request = Request(
                "POST",
                "/x",
                body={},
                headers={TRACEPARENT_HEADER: context.to_header()},
            )
            response = router.dispatch(request)
        assert response.ok
        tree = build_tree(registry.sink.events)
        caller = tree.find("caller")[0]
        assert [c.name for c in caller.children] == ["server.request"]
        assert caller.children[0].attrs["status"] == 200


def fleet_events(workers):
    registry = MetricsRegistry(sink=MemorySink())
    generator = FleetLoadGenerator(
        devices=4,
        duration_s=30.0,
        batch_size=4,
        calibration_s=120.0,
        seed=0,
        registry=registry,
        shards=2,
        workers=workers,
    )
    generator.run()
    return registry.events


class TestFleetTraceIntegration:
    @pytest.fixture(scope="class")
    def events_by_workers(self):
        return {n: fleet_events(n) for n in (1, 2)}

    def test_single_tree_rooted_at_coordinator(self, events_by_workers):
        tree = build_tree(events_by_workers[2])
        assert len(tree.roots) == 1
        root = tree.roots[0]
        assert root.name == "fleet.run"
        shard_spans = [c for c in root.children if c.name == "fleet.shard"]
        assert len(shard_spans) == 2
        assert {c.span_id for c in shard_spans} == {"shard0:1", "shard1:1"}

    def test_trace_id_stamped_on_every_span(self, events_by_workers):
        tree = build_tree(events_by_workers[2])
        assert {n.trace_id for n in tree.walk()} == {"fleet-0"}

    def test_jsonl_round_trip_preserves_tree(self, events_by_workers):
        events = events_by_workers[2]
        replayed = read_jsonl(to_jsonl(events).splitlines())
        original = build_tree(events).to_dict()
        recovered = build_tree(replayed).to_dict()
        assert recovered == original

    def test_workers_1_and_2_byte_identical(self, events_by_workers):
        logs = {
            n: to_jsonl(events_by_workers[n])
            for n in sorted(events_by_workers)
        }
        assert logs[1] == logs[2]
        trees = {
            n: json.dumps(
                build_tree(events_by_workers[n]).to_dict(), sort_keys=True
            )
            for n in sorted(events_by_workers)
        }
        assert trees[1] == trees[2]

    def test_critical_path_descends_through_a_shard(self, events_by_workers):
        path = critical_path(build_tree(events_by_workers[2]))
        assert path[0].name == "fleet.run"
        assert path[1].name == "fleet.shard"
