"""Tests for deterministic RNG streams."""

import numpy as np

from repro.sim.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "fading") == derive_seed(42, "fading")

    def test_differs_by_name(self):
        assert derive_seed(42, "fading") != derive_seed(42, "mobility")

    def test_differs_by_master(self):
        assert derive_seed(1, "fading") != derive_seed(2, "fading")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(0, "x") < 2**64


class TestRngStreams:
    def test_same_name_returns_same_generator(self):
        streams = RngStreams(0)
        assert streams.get("a") is streams.get("a")

    def test_different_names_are_independent_generators(self):
        streams = RngStreams(0)
        assert streams.get("a") is not streams.get("b")

    def test_streams_reproducible_across_instances(self):
        a = RngStreams(7).get("chan").random(5)
        b = RngStreams(7).get("chan").random(5)
        np.testing.assert_array_equal(a, b)

    def test_streams_differ_between_names(self):
        streams = RngStreams(7)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert not np.array_equal(a, b)

    def test_reset_restarts_sequences(self):
        streams = RngStreams(3)
        first = streams.get("x").random(4)
        streams.reset()
        again = streams.get("x").random(4)
        np.testing.assert_array_equal(first, again)

    def test_spawn_creates_independent_family(self):
        parent = RngStreams(3)
        child1 = parent.spawn("phone:alice")
        child2 = parent.spawn("phone:bob")
        assert child1.master_seed != child2.master_seed
        assert not np.array_equal(
            child1.get("c").random(3), child2.get("c").random(3)
        )

    def test_spawn_deterministic(self):
        a = RngStreams(3).spawn("p").get("c").random(3)
        b = RngStreams(3).spawn("p").get("c").random(3)
        np.testing.assert_array_equal(a, b)

    def test_repr_lists_streams(self):
        streams = RngStreams(0)
        streams.get("zeta")
        assert "zeta" in repr(streams)
