"""Tests for battery discharge projection."""

import pytest

from repro.energy.battery import Battery
from repro.energy.discharge import project_discharge, time_to_empty_h


class TestProjectDischarge:
    def test_constant_power_empties_on_schedule(self):
        battery = Battery(1.0)  # 3600 J
        curve = project_discharge(
            battery, [(3600.0, 1.0)], sample_period_s=600.0
        )
        assert battery.is_empty
        assert curve[-1][0] == pytest.approx(3600.0, rel=0.01)

    def test_curve_monotone_decreasing(self):
        battery = Battery(1.0)
        curve = project_discharge(battery, [(1000.0, 2.0)], sample_period_s=100.0)
        socs = [soc for _, soc in curve]
        assert socs == sorted(socs, reverse=True)

    def test_starts_at_full(self):
        battery = Battery(1.0)
        curve = project_discharge(battery, [(100.0, 1.0)], repeat=False)
        assert curve[0] == (0.0, 1.0)

    def test_piecewise_profile(self):
        battery = Battery(1.0)
        # 1800 J in the first hour segment, 1800 J in the second.
        curve = project_discharge(
            battery, [(1800.0, 1.0), (1800.0, 1.0)], sample_period_s=900.0
        )
        assert battery.is_empty
        assert curve[-1][0] == pytest.approx(3600.0, rel=0.01)

    def test_no_repeat_stops_after_one_pass(self):
        battery = Battery(1.0)
        project_discharge(battery, [(600.0, 1.0)], repeat=False)
        assert not battery.is_empty
        assert battery.soc == pytest.approx(1.0 - 600.0 / 3600.0)

    def test_zero_power_respects_max_duration(self):
        battery = Battery(1.0)
        curve = project_discharge(
            battery, [(3600.0, 0.0)], max_duration_s=7200.0,
            sample_period_s=3600.0,
        )
        assert not battery.is_empty
        assert curve[-1][0] <= 7200.0 + 1e-6

    @pytest.mark.parametrize(
        "profile",
        [[], [(0.0, 1.0)], [(100.0, -1.0)]],
    )
    def test_bad_profiles_rejected(self, profile):
        with pytest.raises(ValueError):
            project_discharge(Battery(1.0), profile)

    def test_bad_sample_period_rejected(self):
        with pytest.raises(ValueError):
            project_discharge(Battery(1.0), [(1.0, 1.0)], sample_period_s=0.0)


class TestTimeToEmpty:
    def test_paper_headline_number(self):
        """5.7 Wh at the measured ~0.57 W -> ~10 h (Figure 10)."""
        assert time_to_empty_h(5.7, [(1.0, 0.57)]) == pytest.approx(10.0)

    def test_mixed_profile_uses_mean_power(self):
        # Half the time 1 W, half 0 W -> mean 0.5 W.
        hours = time_to_empty_h(1.0, [(100.0, 1.0), (100.0, 0.0)])
        assert hours == pytest.approx(2.0)

    def test_zero_power_is_infinite(self):
        assert time_to_empty_h(1.0, [(100.0, 0.0)]) == float("inf")

    def test_single_pass_insufficient_is_infinite(self):
        assert time_to_empty_h(1.0, [(60.0, 1.0)], repeat=False) == float("inf")

    def test_single_pass_sufficient(self):
        hours = time_to_empty_h(1.0, [(7200.0, 1.0)], repeat=False)
        assert hours == pytest.approx(1.0, rel=0.01)
