"""Deep integration tests: every subsystem in one run.

These tests run the full pipeline (beacons -> channel -> scanners ->
filters -> uplink -> BMS -> classifier -> history/tracking) and check
the cross-subsystem invariants that unit tests cannot see.
"""

import pytest

from repro.building.occupant import Occupant
from repro.building.presets import office_floor, test_house as make_test_house
from repro.building.scenarios import generate_office_day
from repro.core.config import SystemConfig
from repro.core.system import OccupancyDetectionSystem
from repro.server.rest import Request
from repro.tracking.tracker import OccupantTracker


@pytest.fixture(scope="module")
def multi_occupant_run():
    """One 5-minute run with two occupants (module-scoped: slow)."""
    from repro.building.mobility import RandomWaypoint

    plan = make_test_house()
    system = OccupancyDetectionSystem(plan, SystemConfig(seed=19))
    system.calibrate(duration_s=700.0)
    system.train()
    for name, seed in (("ana", 1), ("ben", 2)):
        system.add_occupant(
            Occupant(name, RandomWaypoint(plan, seed=seed,
                                          pause_range_s=(30.0, 90.0)))
        )
    run = system.run(300.0)
    return plan, system, run


class TestCrossSubsystemInvariants:
    def test_every_occupant_has_full_prediction_series(self, multi_occupant_run):
        _, system, run = multi_occupant_run
        for name in system.occupants:
            assert len(run.predictions[name]) == 150  # 300 s / 2 s

    def test_history_length_matches_cycles(self, multi_occupant_run):
        _, system, _ = multi_occupant_run
        assert len(system.bms.history) == 150

    def test_history_counts_never_exceed_population(self, multi_occupant_run):
        _, system, _ = multi_occupant_run
        for room in system.bms.history.rooms():
            assert system.bms.history.peak(room) <= 2

    def test_sightings_stored_equal_delivered(self, multi_occupant_run):
        _, system, run = multi_occupant_run
        delivered = sum(stats.delivered for stats in run.delivery.values())
        assert system.bms.sighting_count == delivered

    def test_energy_has_all_components(self, multi_occupant_run):
        _, _, run = multi_occupant_run
        for breakdown in run.energy.values():
            assert {"baseline", "ble_scan", "uplink_radio"} <= set(
                breakdown.components_j
            )
            assert breakdown.total_j > 0.0

    def test_accuracy_reasonable_with_two_occupants(self, multi_occupant_run):
        _, _, run = multi_occupant_run
        assert run.accuracy > 0.6

    def test_region_events_start_with_enter(self, multi_occupant_run):
        _, system, _ = multi_occupant_run
        for rt in system._runtimes.values():
            events = rt.phone.app.region_events
            if events:
                assert events[0].kind.value == "enter"

    def test_rest_queries_agree_with_snapshot(self, multi_occupant_run):
        _, system, _ = multi_occupant_run
        snap = system.bms.snapshot()
        response = system.bms.router.dispatch(
            Request("GET", "/occupancy", time=snap.time)
        )
        assert response.ok
        assert response.body["rooms"] == snap.rooms

    def test_tracker_transitions_consistent_with_estimates(self, multi_occupant_run):
        _, system, run = multi_occupant_run
        tracker = OccupantTracker.from_predictions(run.predictions)
        for transition in tracker.transitions:
            assert transition.device_id in system.occupants
            assert transition.from_room != transition.to_room

    def test_confusion_totals_match_predictions(self, multi_occupant_run):
        _, system, run = multi_occupant_run
        n_predictions = sum(len(v) for v in run.predictions.values())
        assert run.confusion.total == n_predictions


class TestOfficeDayScenarioIntegration:
    def test_generated_day_runs_through_the_pipeline(self):
        plan = office_floor(2)
        day = generate_office_day(plan, n_workers=2, seed=5, day_hours=3.0)
        system = OccupancyDetectionSystem(plan, SystemConfig(seed=23))
        system.calibrate(duration_s=500.0)
        system.train()
        for occupant in day.occupants:
            system.add_occupant(occupant)
        # Run a midday slice of the generated day.
        run = system.run(240.0)
        assert run.accuracy >= 0.0  # evaluated without error
        truth = day.ground_truth(plan)
        assert isinstance(truth(1.5 * 3600.0), dict)
