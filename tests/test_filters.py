"""Tests for the scalar filters."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.filters.base import RawFilter
from repro.filters.ewma import PAPER_COEFFICIENT, EwmaFilter
from repro.filters.kalman import Kalman1DFilter
from repro.filters.moving_average import MovingAverageFilter

finite_floats = st.floats(-1000.0, 1000.0)


class TestRawFilter:
    def test_passthrough(self):
        f = RawFilter()
        assert f.update(3.0) == 3.0
        assert f.update(-7.5) == -7.5

    def test_value_before_update_raises(self):
        with pytest.raises(ValueError):
            RawFilter().value

    def test_reset(self):
        f = RawFilter()
        f.update(1.0)
        f.reset()
        with pytest.raises(ValueError):
            f.value

    def test_clone_is_fresh(self):
        f = RawFilter()
        f.update(5.0)
        clone = f.clone()
        with pytest.raises(ValueError):
            clone.value


class TestEwmaFilter:
    def test_paper_coefficient_constant(self):
        assert PAPER_COEFFICIENT == 0.65

    def test_first_update_initialises_directly(self):
        f = EwmaFilter(0.65)
        assert f.update(-60.0) == -60.0

    def test_recurrence_matches_paper_formula(self):
        """p_i = c * p_{i-1} + (1 - c) * v_i."""
        f = EwmaFilter(0.65)
        f.update(-60.0)
        assert f.update(-70.0) == pytest.approx(0.65 * -60.0 + 0.35 * -70.0)

    def test_zero_coefficient_is_raw(self):
        f = EwmaFilter(0.0)
        f.update(1.0)
        assert f.update(9.0) == 9.0

    @pytest.mark.parametrize("coeff", [-0.1, 1.0, 1.5])
    def test_rejects_bad_coefficient(self, coeff):
        with pytest.raises(ValueError):
            EwmaFilter(coeff)

    def test_higher_coefficient_smooths_more(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(0.0, 1.0, 200)
        smooth = EwmaFilter(0.9)
        rough = EwmaFilter(0.2)
        out_smooth = [smooth.update(v) for v in noise]
        out_rough = [rough.update(v) for v in noise]
        assert np.std(out_smooth[50:]) < np.std(out_rough[50:])

    @given(values=st.lists(finite_floats, min_size=1, max_size=50))
    def test_output_bounded_by_input_range(self, values):
        """EWMA output is a convex combination of past inputs."""
        f = EwmaFilter(0.65)
        for v in values:
            out = f.update(v)
            assert min(values) - 1e-9 <= out <= max(values) + 1e-9

    @given(
        constant=finite_floats,
        n=st.integers(1, 30),
        coeff=st.floats(0.0, 0.99),
    )
    def test_constant_input_is_fixed_point(self, constant, n, coeff):
        f = EwmaFilter(coeff)
        for _ in range(n):
            out = f.update(constant)
        assert out == pytest.approx(constant, abs=1e-6)

    def test_clone_preserves_coefficient(self):
        assert EwmaFilter(0.3).clone().coefficient == 0.3


class TestMovingAverage:
    def test_window_mean(self):
        f = MovingAverageFilter(3)
        f.update(1.0)
        f.update(2.0)
        assert f.update(3.0) == pytest.approx(2.0)
        assert f.update(4.0) == pytest.approx(3.0)

    def test_partial_window(self):
        f = MovingAverageFilter(10)
        assert f.update(4.0) == 4.0
        assert f.update(6.0) == 5.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            MovingAverageFilter(0)

    def test_reset_clears_buffer(self):
        f = MovingAverageFilter(3)
        f.update(100.0)
        f.reset()
        assert f.update(2.0) == 2.0

    @given(values=st.lists(finite_floats, min_size=1, max_size=50))
    def test_output_bounded_by_window_range(self, values):
        f = MovingAverageFilter(5)
        for i, v in enumerate(values):
            out = f.update(v)
            window = values[max(0, i - 4) : i + 1]
            assert min(window) - 1e-9 <= out <= max(window) + 1e-9


class TestKalman:
    def test_first_update_initialises(self):
        f = Kalman1DFilter()
        assert f.update(-60.0) == -60.0

    def test_converges_to_constant_signal(self):
        f = Kalman1DFilter(process_variance=0.01, measurement_variance=4.0)
        rng = np.random.default_rng(1)
        out = None
        for _ in range(300):
            out = f.update(-60.0 + rng.normal(0, 2.0))
        assert out == pytest.approx(-60.0, abs=1.5)

    def test_variance_shrinks_with_updates(self):
        f = Kalman1DFilter()
        f.update(0.0)
        v1 = f.variance
        for _ in range(10):
            f.update(0.0)
        assert f.variance < v1

    def test_tracks_step_change(self):
        f = Kalman1DFilter(process_variance=1.0, measurement_variance=1.0)
        for _ in range(20):
            f.update(0.0)
        for _ in range(20):
            out = f.update(10.0)
        assert out > 8.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"process_variance": 0.0},
            {"measurement_variance": -1.0},
            {"initial_variance": 0.0},
        ],
    )
    def test_rejects_bad_variances(self, kwargs):
        with pytest.raises(ValueError):
            Kalman1DFilter(**kwargs)

    def test_reset_restores_prior(self):
        f = Kalman1DFilter()
        f.update(5.0)
        f.reset()
        assert f.variance == f.initial_variance

    def test_clone_preserves_config(self):
        f = Kalman1DFilter(0.3, 2.0, 50.0)
        clone = f.clone()
        assert clone.process_variance == 0.3
        assert clone.measurement_variance == 2.0
        assert clone.initial_variance == 50.0
