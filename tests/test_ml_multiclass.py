"""Tests for the one-vs-rest multiclass reduction."""

import numpy as np
import pytest

from repro.ml.kernels import RbfKernel
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.svm import BinarySVM, SupportVectorClassifier


def blobs(rng, centers, n_per=30, spread=0.5):
    X = np.vstack([rng.normal(c, spread, size=(n_per, len(c))) for c in centers])
    y = np.array(sum([["c%d" % i] * n_per for i in range(len(centers))], []))
    return X, y


class TestOneVsRest:
    def test_three_class_accuracy(self):
        rng = np.random.default_rng(0)
        X, y = blobs(rng, [(0, 0), (4, 0), (0, 4)])
        model = OneVsRestClassifier(lambda: BinarySVM(c=5.0)).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_one_machine_per_class(self):
        rng = np.random.default_rng(1)
        X, y = blobs(rng, [(0, 0), (4, 0), (0, 4), (4, 4)])
        model = OneVsRestClassifier().fit(X, y)
        assert len(model._machines) == 4

    def test_decision_matrix_shape(self):
        rng = np.random.default_rng(2)
        X, y = blobs(rng, [(0, 0), (4, 0), (0, 4)])
        model = OneVsRestClassifier().fit(X, y)
        assert model.decision_matrix(X[:7]).shape == (7, 3)

    def test_agrees_with_ovo_on_easy_data(self):
        rng = np.random.default_rng(3)
        X, y = blobs(rng, [(0, 0), (5, 0), (0, 5)], spread=0.4)
        ovr = OneVsRestClassifier(lambda: BinarySVM(c=10.0)).fit(X, y)
        ovo = SupportVectorClassifier(c=10.0).fit(X, y)
        agreement = np.mean(ovr.predict(X) == ovo.predict(X))
        assert agreement > 0.97

    def test_generalises(self):
        rng = np.random.default_rng(4)
        X, y = blobs(rng, [(0, 0), (4, 0)], n_per=50)
        Xt, yt = blobs(rng, [(0, 0), (4, 0)], n_per=15)
        model = OneVsRestClassifier().fit(X, y)
        assert model.score(Xt, yt) > 0.9

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OneVsRestClassifier().predict(np.ones((1, 2)))

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            OneVsRestClassifier().fit(np.ones((4, 2)), ["a"] * 4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OneVsRestClassifier().fit(np.ones((4, 2)), ["a", "b"])

    def test_clone_unfitted(self):
        model = OneVsRestClassifier().clone()
        with pytest.raises(RuntimeError):
            model.predict(np.ones((1, 2)))

    def test_custom_kernel_factory(self):
        rng = np.random.default_rng(5)
        X, y = blobs(rng, [(0, 0), (3, 0)])
        model = OneVsRestClassifier(
            lambda: BinarySVM(c=5.0, kernel=RbfKernel(gamma=1.0))
        ).fit(X, y)
        assert model.score(X, y) > 0.95
