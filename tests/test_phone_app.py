"""Tests for the client app state machine (paper Figure 3)."""

import numpy as np
import pytest

from repro.ble.air import AirInterface
from repro.building.geometry import Point
from repro.building.presets import BUILDING_UUID, single_room, two_room_corridor
from repro.ibeacon.region import BeaconRegion, RegionEventKind
from repro.phone.app import AppState, OccupancyApp
from repro.phone.scanner import AndroidScanner
from repro.radio.channel import ChannelModel


def make_app(plan, *, position=None, region=None, seed=0):
    air = AirInterface(
        plan,
        ChannelModel(shadowing_sigma_db=0.0, fading=None, collision_loss_prob=0.0),
    )
    scanner = AndroidScanner(air, device="ideal", rng=np.random.default_rng(seed))
    region = region if region is not None else BeaconRegion("building", BUILDING_UUID)
    app = OccupancyApp("phone-1", scanner, region)
    return app


def at(point):
    return lambda t: point


class TestLifecycle:
    def test_initial_state_off(self, lab_plan):
        assert make_app(lab_plan).state is AppState.OFF

    def test_boot_starts_monitoring(self, lab_plan):
        app = make_app(lab_plan)
        app.boot()
        assert app.state is AppState.MONITORING

    def test_double_boot_rejected(self, lab_plan):
        app = make_app(lab_plan)
        app.boot()
        with pytest.raises(RuntimeError):
            app.boot()

    def test_cycle_before_boot_rejected(self, lab_plan):
        app = make_app(lab_plan)
        with pytest.raises(RuntimeError):
            app.run_cycle(at(Point(1, 1)), 0.0)

    def test_shutdown_resets(self, lab_plan):
        app = make_app(lab_plan)
        app.boot()
        app.run_cycle(at(Point(1.5, 4.0)), 0.0)
        app.shutdown()
        assert app.state is AppState.OFF
        assert app.tracker.live_beacons == []

    def test_shutdown_clears_tx_power_cache(self, lab_plan):
        """Regression: shutdown used to leak the TX-power cache, one
        entry per beacon ever ranged."""
        app = make_app(lab_plan)
        app.boot()
        app.run_cycle(at(Point(1.5, 4.0)), 0.0)
        assert app._tx_power_by_beacon  # learned during ranging
        app.shutdown()
        assert app._tx_power_by_beacon == {}

    def test_region_exit_clears_tx_power_cache(self, lab_plan):
        """Regression: the cache must not survive a region exit."""
        app = make_app(lab_plan)
        app.boot()
        app.run_cycle(at(Point(1.5, 4.0)), 0.0)
        assert app._tx_power_by_beacon
        app.run_cycle(at(Point(500.0, 500.0)), 2.0)
        app.run_cycle(at(Point(500.0, 500.0)), 4.0)
        assert app.state is AppState.MONITORING
        assert app._tx_power_by_beacon == {}
        # Re-entry re-learns the calibration byte from the payload.
        app.run_cycle(at(Point(1.5, 4.0)), 6.0)
        assert app._tx_power_by_beacon


class TestMonitoringToRanging:
    def test_enter_event_on_first_sighting(self, lab_plan):
        app = make_app(lab_plan)
        app.boot()
        report = app.run_cycle(at(Point(1.5, 4.0)), 0.0)
        assert app.state is AppState.RANGING
        assert report is not None
        assert app.region_events[0].kind is RegionEventKind.ENTER

    def test_no_event_when_out_of_range(self, lab_plan):
        app = make_app(lab_plan)
        app.boot()
        report = app.run_cycle(at(Point(500.0, 500.0)), 0.0)
        assert report is None
        assert app.state is AppState.MONITORING
        assert app.region_events == []

    def test_exit_after_two_lost_cycles(self, lab_plan):
        app = make_app(lab_plan)
        app.boot()
        app.run_cycle(at(Point(1.5, 4.0)), 0.0)
        # Walk far away: beacon still held 1 cycle, evicted on the 2nd.
        app.run_cycle(at(Point(500.0, 500.0)), 2.0)
        assert app.state is AppState.RANGING  # held through first loss
        app.run_cycle(at(Point(500.0, 500.0)), 4.0)
        assert app.state is AppState.MONITORING
        kinds = [e.kind for e in app.region_events]
        assert kinds == [RegionEventKind.ENTER, RegionEventKind.EXIT]

    def test_wrong_region_uuid_never_enters(self, lab_plan):
        foreign = BeaconRegion(
            "foreign", "00000000-0000-0000-0000-00000000dead"
        )
        app = make_app(lab_plan, region=foreign)
        app.boot()
        report = app.run_cycle(at(Point(1.5, 4.0)), 0.0)
        assert report is None
        assert app.state is AppState.MONITORING


class TestRangingReports:
    def test_report_contains_distances(self, lab_plan):
        app = make_app(lab_plan)
        app.boot()
        report = app.run_cycle(at(Point(2.5, 4.0)), 0.0)
        assert report.device_id == "phone-1"
        beacon = report.beacons[0]
        assert beacon.beacon_id == "1-1"
        # True distance 2 m; quiet channel, so the estimate is close.
        assert 1.0 < beacon.distance_m < 4.0

    def test_reports_accumulate(self, lab_plan):
        app = make_app(lab_plan)
        app.boot()
        for k in range(4):
            app.run_cycle(at(Point(2.5, 4.0)), 2.0 * k)
        assert len(app.reports) == 4

    def test_on_report_callback_invoked(self, lab_plan):
        received = []
        app = make_app(lab_plan)
        app.on_report = received.append
        app.boot()
        app.run_cycle(at(Point(2.5, 4.0)), 0.0)
        assert len(received) == 1

    def test_held_flag_set_on_missed_scan(self, corridor_plan):
        app = make_app(corridor_plan)
        app.boot()
        app.run_cycle(at(Point(1.0, 1.5)), 0.0)
        # Move far beyond even the ideal device's sensitivity; the
        # next cycle surfaces nothing, so every estimate is held.
        report = app.run_cycle(at(Point(-5000.0, 1.5)), 2.0)
        assert report is not None
        assert all(b.held for b in report.beacons)

    def test_report_distances_dict(self, lab_plan):
        app = make_app(lab_plan)
        app.boot()
        report = app.run_cycle(at(Point(2.5, 4.0)), 0.0)
        assert set(report.distances()) == {"1-1"}
        assert set(report.rssis()) == {"1-1"}

    def test_filter_smooths_across_cycles(self, lab_plan):
        app = make_app(lab_plan, seed=5)
        app.boot()
        estimates = []
        for k in range(20):
            report = app.run_cycle(at(Point(2.5, 4.0)), 2.0 * k)
            estimates.append(report.beacons[0].rssi)
        # Later values move less than early ones on a static link.
        early_deltas = np.abs(np.diff(estimates[:5]))
        late_deltas = np.abs(np.diff(estimates[-5:]))
        assert np.mean(late_deltas) <= np.mean(early_deltas) + 1.0


class TestValidation:
    def test_bad_exponent_rejected(self, lab_plan):
        air = AirInterface(lab_plan)
        scanner = AndroidScanner(air, device="ideal")
        with pytest.raises(ValueError):
            OccupancyApp(
                "p", scanner, BeaconRegion("b", BUILDING_UUID), path_loss_exponent=0.0
            )
