"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools predates PEP 660 editable wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Occupancy Detection via iBeacon on Android "
        "Devices for Smart Building Management' (DATE 2015)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro-sim=repro.cli:main"]},
)
